package transform

import (
	"math"
	"testing"
	"testing/quick"

	"exdra/internal/frame"
)

func specABC() Spec {
	return Spec{Columns: []ColumnSpec{
		{Name: "A", Method: Recode, OneHot: true},
		{Name: "B", Method: Bin, NumBins: 3, OneHot: true},
		{Name: "C", Method: Recode, OneHot: true},
	}}
}

// site1 and site2 reproduce the federated input frames of Figure 3.
func site1() *frame.Frame {
	return frame.MustNew(
		frame.StringColumn("A", []string{"R101", "R101", "C7", "R101", "C3", "R102"}),
		frame.FloatColumn("B", []float64{2100, 4350, 5500, 2500, 4900, 5200}),
		frame.StringColumn("C", []string{"X", "", "Z", "X", "Z", "Y"}),
	)
}

func site2() *frame.Frame {
	return frame.MustNew(
		frame.StringColumn("A", []string{"C5", "C91", "C5", "R101", "C5", "R101"}),
		frame.FloatColumn("B", []float64{3500, 2600, 4400, 5400, 1900, 5200}),
		frame.StringColumn("C", []string{"Z", "Z", "Z", "X", "", "X"}),
	)
}

func TestFigure3FederatedEncode(t *testing.T) {
	t.Parallel()
	spec := specABC()
	p1 := mustPartial(t, site1(), spec)
	p2 := mustPartial(t, site2(), spec)
	m := Merge(spec, site1().Names(), p1, p2)

	// Global distinct categories of A across both sites, sorted.
	wantA := []string{"C3", "C5", "C7", "C91", "R101", "R102"}
	gotA := m.RecodeKeys["A"]
	if len(gotA) != len(wantA) {
		t.Fatalf("A categories: %v", gotA)
	}
	for i := range wantA {
		if gotA[i] != wantA[i] {
			t.Fatalf("A categories: %v", gotA)
		}
	}
	// Global bin range is [1900, 5500] -> width 1200.
	if m.BinMins["B"] != 1900 || math.Abs(m.BinWidths["B"]-1200) > 1e-9 {
		t.Fatalf("bin min=%g width=%g", m.BinMins["B"], m.BinWidths["B"])
	}
	// Output layout: 6 (A) + 3 (B) + 3 (C) columns.
	if m.NumOutputCols() != 12 {
		t.Fatalf("output cols %d", m.NumOutputCols())
	}

	x1, err := Apply(site1(), m)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Apply(site2(), m)
	if err != nil {
		t.Fatal(err)
	}
	if x1.Cols() != 12 || x2.Cols() != 12 {
		t.Fatal("encoded widths differ")
	}
	// Row 0 of site1: A=R101 (code 5), B=2100 (bin 1), C=X (code 1).
	if x1.At(0, 4) != 1 || x1.At(0, 6) != 1 || x1.At(0, 9) != 1 {
		t.Fatalf("site1 row0: %v", x1.SliceRows(0, 1))
	}
	// NULL in C of site1 row 1 must one-hot to all zeros in the C block.
	for k := 9; k < 12; k++ {
		if x1.At(1, k) != 0 {
			t.Fatal("NULL category must encode to all-zero one-hot")
		}
	}
	// Categories absent at a site (e.g. C91 only at site2) still occupy a
	// column at site1 (all zero) for consistent feature positions.
	colC91 := 3 // A block is cols 0..5 in sorted order; C91 is index 3
	for i := 0; i < x1.Rows(); i++ {
		if x1.At(i, colC91) != 0 {
			t.Fatal("C91 column should be all-zero at site1")
		}
	}
	found := false
	for i := 0; i < x2.Rows(); i++ {
		if x2.At(i, colC91) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("C91 not encoded at site2")
	}
}

func TestFederatedEqualsLocalEncoding(t *testing.T) {
	t.Parallel()
	// Encoding the union locally must equal rbind of per-site encodings
	// under merged metadata (the paper's "equivalent to local encoding").
	spec := specABC()
	union, err := frame.RBind(site1(), site2())
	if err != nil {
		t.Fatal(err)
	}
	xLocal, _, err := Encode(union, spec)
	if err != nil {
		t.Fatal(err)
	}
	p1 := mustPartial(t, site1(), spec)
	p2 := mustPartial(t, site2(), spec)
	m := Merge(spec, site1().Names(), p1, p2)
	x1, _ := Apply(site1(), m)
	x2, _ := Apply(site2(), m)
	if x1.Rows()+x2.Rows() != xLocal.Rows() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < x1.Rows(); i++ {
		for j := 0; j < x1.Cols(); j++ {
			if x1.At(i, j) != xLocal.At(i, j) {
				t.Fatalf("cell (%d,%d) differs", i, j)
			}
		}
	}
	for i := 0; i < x2.Rows(); i++ {
		for j := 0; j < x2.Cols(); j++ {
			if x2.At(i, j) != xLocal.At(x1.Rows()+i, j) {
				t.Fatalf("site2 cell (%d,%d) differs", i, j)
			}
		}
	}
}

func TestRecodeWithoutOneHot(t *testing.T) {
	t.Parallel()
	f := frame.MustNew(frame.StringColumn("A", []string{"b", "a", "b"}))
	x, m, err := Encode(f, Spec{Columns: []ColumnSpec{{Name: "A", Method: Recode}}})
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols() != 1 || x.At(0, 0) != 2 || x.At(1, 0) != 1 {
		t.Fatalf("recode codes: %v", x)
	}
	if m.RecodeMaps["A"]["a"] != 1 {
		t.Fatal("code assignment")
	}
}

func TestBinningClampsOutOfRange(t *testing.T) {
	t.Parallel()
	f := frame.MustNew(frame.FloatColumn("B", []float64{0, 5, 10}))
	_, m, err := Encode(f, Spec{Columns: []ColumnSpec{{Name: "B", Method: Bin, NumBins: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Apply to unseen data beyond the training range: codes clamp to [1, nb].
	f2 := frame.MustNew(frame.FloatColumn("B", []float64{-100, 100}))
	x2, err := Apply(f2, m)
	if err != nil {
		t.Fatal(err)
	}
	if x2.At(0, 0) != 1 || x2.At(1, 0) != 2 {
		t.Fatalf("clamping: %v", x2)
	}
}

func TestBinningValueAtMaxLandsInLastBin(t *testing.T) {
	t.Parallel()
	// v == max sits exactly on the upper boundary: (max-min)/width == nb,
	// which must clamp into the last bin, not a phantom bin nb+1.
	f := frame.MustNew(frame.FloatColumn("B", []float64{0, 2, 4, 6, 8, 10}))
	x, m, err := Encode(f, Spec{Columns: []ColumnSpec{{Name: "B", Method: Bin, NumBins: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.BinWidths["B"] != 2 {
		t.Fatalf("width %g", m.BinWidths["B"])
	}
	if got := x.At(5, 0); got != 5 {
		t.Fatalf("value==max encoded to bin %g, want last bin 5", got)
	}
}

func TestBinningExtremeOutlierLandsInLastBin(t *testing.T) {
	t.Parallel()
	// Regression: an apply-time outlier far beyond the training range used
	// to be converted to int before clamping; float-to-int conversion of an
	// out-of-range value wraps (to minint on amd64), so 1e30 landed in bin
	// 1 instead of the last bin. NaN cells (not NA-masked) hit the same
	// undefined conversion; they must deterministically bin to 1.
	f := frame.MustNew(frame.FloatColumn("B", []float64{0, 5, 10}))
	_, m, err := Encode(f, Spec{Columns: []ColumnSpec{{Name: "B", Method: Bin, NumBins: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	f2 := frame.MustNew(frame.FloatColumn("B", []float64{1e30, -1e30, math.NaN()}))
	x2, err := Apply(f2, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := x2.At(0, 0); got != 4 {
		t.Fatalf("outlier 1e30 encoded to bin %g, want last bin 4", got)
	}
	if got := x2.At(1, 0); got != 1 {
		t.Fatalf("outlier -1e30 encoded to bin %g, want bin 1", got)
	}
	if got := x2.At(2, 0); got != 1 {
		t.Fatalf("NaN cell encoded to bin %g, want bin 1", got)
	}
}

func TestAllNullColumnBinning(t *testing.T) {
	t.Parallel()
	// Regression: merging partials for a column no site has data for used
	// to publish BinMins=+Inf/width=1 (the untouched scan sentinels),
	// poisoning later applies and decode bounds. It must degrade to a
	// finite [0, 0] range.
	c := frame.FloatColumn("B", []float64{1, 2, 3})
	c.NA = []bool{true, true, true}
	f := frame.MustNew(c)
	spec := Spec{Columns: []ColumnSpec{{Name: "B", Method: Bin, NumBins: 3}}}
	p := mustPartial(t, f, spec)
	m := Merge(spec, f.Names(), p)
	if math.IsInf(m.BinMins["B"], 0) || math.IsNaN(m.BinWidths["B"]) {
		t.Fatalf("non-finite merged bin range: min=%g width=%g", m.BinMins["B"], m.BinWidths["B"])
	}
	x, err := Apply(f, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if x.At(i, 0) != 0 {
			t.Fatalf("NULL cell %d encoded to %g, want 0", i, x.At(i, 0))
		}
	}
	// Fresh non-NULL data against the degenerate range still clamps sanely.
	x2, err := Apply(frame.MustNew(frame.FloatColumn("B", []float64{-3, 7})), m)
	if err != nil {
		t.Fatal(err)
	}
	if x2.At(0, 0) != 1 || x2.At(1, 0) != 3 {
		t.Fatalf("degenerate-range clamping: %g, %g", x2.At(0, 0), x2.At(1, 0))
	}
}

func TestConstantColumnBinning(t *testing.T) {
	t.Parallel()
	f := frame.MustNew(frame.FloatColumn("B", []float64{5, 5, 5}))
	x, _, err := Encode(f, Spec{Columns: []ColumnSpec{{Name: "B", Method: Bin, NumBins: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if x.At(i, 0) != 1 {
			t.Fatal("constant column should land in bin 1")
		}
	}
}

func TestFeatureHashingNeedsNoMetadataExchange(t *testing.T) {
	t.Parallel()
	spec := Spec{Columns: []ColumnSpec{{Name: "A", Method: Hash, K: 4, OneHot: true}}}
	f1 := frame.MustNew(frame.StringColumn("A", []string{"x", "y"}))
	f2 := frame.MustNew(frame.StringColumn("A", []string{"y", "z"}))
	// Two sites merging no partials at all still encode consistently.
	m1 := Merge(spec, f1.Names())
	m2 := Merge(spec, f2.Names())
	x1, _ := Apply(f1, m1)
	x2, _ := Apply(f2, m2)
	// "y" hashes to the same bucket at both sites.
	var b1, b2 int
	for j := 0; j < 4; j++ {
		if x1.At(1, j) == 1 {
			b1 = j
		}
		if x2.At(0, j) == 1 {
			b2 = j
		}
	}
	if b1 != b2 {
		t.Fatal("hash encoding differs across sites")
	}
	if x1.Cols() != 4 {
		t.Fatal("hash one-hot width")
	}
}

func TestPassThroughAndMixedLayout(t *testing.T) {
	t.Parallel()
	f := frame.MustNew(
		frame.FloatColumn("num", []float64{1.5, 2.5}),
		frame.StringColumn("cat", []string{"a", "b"}),
	)
	x, m, err := Encode(f, Spec{Columns: []ColumnSpec{{Name: "cat", Method: Recode, OneHot: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols() != 3 {
		t.Fatalf("cols %d", x.Cols())
	}
	if x.At(0, 0) != 1.5 || x.At(1, 0) != 2.5 {
		t.Fatal("pass-through column")
	}
	if m.NumOutputCols() != 3 {
		t.Fatal("NumOutputCols")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	f := frame.MustNew(
		frame.StringColumn("A", []string{"r", "s", "r", "t"}),
		frame.FloatColumn("num", []float64{1, 2, 3, 4}),
	)
	for _, oneHot := range []bool{false, true} {
		spec := Spec{Columns: []ColumnSpec{{Name: "A", Method: Recode, OneHot: oneHot}}}
		x, m, err := Encode(f, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(x, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if got.Column(0).AsString(i) != f.Column(0).AsString(i) {
				t.Fatalf("oneHot=%v decode row %d: %q", oneHot, i, got.Column(0).AsString(i))
			}
			if got.Column(1).MustFloat(i) != f.Column(1).MustFloat(i) {
				t.Fatal("numeric decode")
			}
		}
	}
}

func TestMetaFrame(t *testing.T) {
	t.Parallel()
	spec := specABC()
	p := mustPartial(t, site1(), spec)
	m := Merge(spec, site1().Names(), p)
	mf := m.MetaFrame()
	if mf.NumRows() == 0 || mf.NumCols() != 4 {
		t.Fatalf("meta frame %dx%d", mf.NumRows(), mf.NumCols())
	}
	// First rows describe column A's recode map.
	if mf.Column(0).AsString(0) != "A" || mf.Column(1).AsString(0) != "recode" {
		t.Fatal("meta frame content")
	}
}

func TestApplyErrors(t *testing.T) {
	t.Parallel()
	f := frame.MustNew(frame.StringColumn("A", []string{"a"}))
	other := frame.MustNew(frame.StringColumn("Z", []string{"a"}))
	_, m, err := Encode(f, Spec{Columns: []ColumnSpec{{Name: "A", Method: Recode}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(other, m); err == nil {
		t.Fatal("column name mismatch accepted")
	}
	two := frame.MustNew(frame.StringColumn("A", []string{"a"}), frame.FloatColumn("B", []float64{1}))
	if _, err := Apply(two, m); err == nil {
		t.Fatal("column count mismatch accepted")
	}
}

func TestPropMergeOrderInvariant(t *testing.T) {
	t.Parallel()
	// Merging partials in any order yields identical code assignment.
	f := func(vals1, vals2 []string) bool {
		c1 := frame.StringColumn("A", append([]string{"base"}, vals1...))
		c2 := frame.StringColumn("A", append([]string{"base"}, vals2...))
		f1 := frame.MustNew(c1)
		f2 := frame.MustNew(c2)
		spec := Spec{Columns: []ColumnSpec{{Name: "A", Method: Recode}}}
		p1 := mustPartial(t, f1, spec)
		p2 := mustPartial(t, f2, spec)
		a := Merge(spec, []string{"A"}, p1, p2)
		b := Merge(spec, []string{"A"}, p2, p1)
		if len(a.RecodeKeys["A"]) != len(b.RecodeKeys["A"]) {
			return false
		}
		for k, v := range a.RecodeMaps["A"] {
			if b.RecodeMaps["A"][k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// mustPartial is BuildPartial failing the test on error.
func mustPartial(t *testing.T, f *frame.Frame, spec Spec) PartialMeta {
	t.Helper()
	pm, err := BuildPartial(f, spec)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}
