package transform_test

import (
	"fmt"

	"exdra/internal/frame"
	"exdra/internal/transform"
)

// Example_federatedTwoPass shows the two-pass transformencode of Figure 3:
// per-site partial metadata, a coordinator-side merge assigning consistent
// codes, and per-site application.
func Example_federatedTwoPass() {
	site1 := frame.MustNew(frame.StringColumn("A", []string{"R101", "C7"}))
	site2 := frame.MustNew(frame.StringColumn("A", []string{"C5", "R101"}))
	spec := transform.Spec{Columns: []transform.ColumnSpec{
		{Name: "A", Method: transform.Recode, OneHot: true},
	}}

	// Pass 1 at each site, merge at the coordinator.
	p1, _ := transform.BuildPartial(site1, spec)
	p2, _ := transform.BuildPartial(site2, spec)
	meta := transform.Merge(spec, []string{"A"}, p1, p2)
	fmt.Println("global categories:", meta.RecodeKeys["A"])

	// Pass 2: both sites encode under the merged metadata — consistent
	// feature positions even for categories a site never saw.
	x1, _ := transform.Apply(site1, meta)
	x2, _ := transform.Apply(site2, meta)
	fmt.Println("site1 row0:", x1.Row(0))
	fmt.Println("site2 row1:", x2.Row(1))
	// Output:
	// global categories: [C5 C7 R101]
	// site1 row0: [0 0 1]
	// site2 row1: [0 0 1]
}
