package data

import (
	"math"
	"testing"

	"exdra/internal/matrix"
	"exdra/internal/transform"
)

func TestRegressionDeterministicAndLearnable(t *testing.T) {
	x1, y1 := Regression(5, 100, 8, 0.01)
	x2, y2 := Regression(5, 100, 8, 0.01)
	if !x1.EqualApprox(x2, 0) || !y1.EqualApprox(y2, 0) {
		t.Fatal("not deterministic")
	}
	// Targets correlate with features: solving the normal equations
	// recovers most of the variance.
	w, ok := matrix.SolveCholesky(x1.TSMM(), x1.Transpose().MatMul(y1))
	if !ok {
		t.Fatal("normal equations")
	}
	pred := x1.MatMul(w)
	res := pred.Sub(y1)
	if res.Mul(res).Sum() > 0.01*y1.Mul(y1).Sum() {
		t.Fatal("targets not linear in features")
	}
}

func TestClassificationLabelsAndFlips(t *testing.T) {
	_, y := Classification(6, 500, 5, 0)
	for _, v := range y.Data() {
		if v != 1 && v != -1 {
			t.Fatalf("label %g", v)
		}
	}
	// With a 50% flip rate roughly half the labels differ from flip=0.
	_, y2 := Classification(6, 500, 5, 0.5)
	diff := 0
	for i := range y.Data() {
		if y.Data()[i] != y2.Data()[i] {
			diff++
		}
	}
	if diff < 150 || diff > 350 {
		t.Fatalf("flip rate off: %d/500 flipped", diff)
	}
}

func TestMultiClassAndBlobs(t *testing.T) {
	x, y := MultiClass(7, 300, 6, 5)
	if x.Rows() != 300 || y.Min() < 1 || y.Max() > 5 {
		t.Fatalf("labels range [%g,%g]", y.Min(), y.Max())
	}
	b, assign := Blobs(8, 200, 4, 3, 0.5)
	if b.Rows() != 200 || len(assign) != 200 {
		t.Fatal("blob shape")
	}
	for _, a := range assign {
		if a < 0 || a >= 3 {
			t.Fatalf("assignment %d", a)
		}
	}
}

func TestPaperProductionShapeAndEncoding(t *testing.T) {
	fr := PaperProduction(PaperProductionConfig{
		Rows: 500, ContinuousCols: 10, RecipeCategories: 30, NullRate: 0.1, Seed: 3,
	})
	if fr.NumRows() != 500 || fr.NumCols() != 13 {
		t.Fatalf("frame %dx%d", fr.NumRows(), fr.NumCols())
	}
	// NULL quality classes appear at roughly the configured rate.
	q := fr.ColumnByName("quality")
	nulls := 0
	for i := 0; i < q.Len(); i++ {
		if q.IsNA(i) {
			nulls++
		}
	}
	if nulls < 20 || nulls > 100 {
		t.Fatalf("null count %d", nulls)
	}
	// Encoding expands recipes and quality into one-hot blocks.
	x, meta, err := transform.Encode(fr, PaperProductionSpec())
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols() <= 13 || meta.NumOutputCols() != x.Cols() {
		t.Fatalf("encoded width %d", x.Cols())
	}
	if fr.ColumnByName("zstrength") == nil {
		t.Fatal("target column missing")
	}
	// Defaults fill zero values.
	d := PaperProduction(PaperProductionConfig{})
	if d.NumRows() != 1000 {
		t.Fatal("defaults")
	}
}

func TestSyntheticMNISTShapeAndSparsity(t *testing.T) {
	x, y := SyntheticMNIST(9, 300)
	if x.Cols() != 784 || y.Rows() != 300 {
		t.Fatal("mnist shape")
	}
	if y.Min() < 1 || y.Max() > 10 {
		t.Fatal("mnist labels")
	}
	// Non-zero fraction just below the sparse threshold, as in the paper's
	// CNN discussion.
	sp := x.Sparsity()
	if sp < 0.05 || sp > matrix.SparsityThreshold {
		t.Fatalf("sparsity %g outside (0.05, %g)", sp, matrix.SparsityThreshold)
	}
}

func TestFertilizerSensors(t *testing.T) {
	x, anomalies := FertilizerSensors(10, 1000, 0.02)
	if x.Rows() != 1000 || x.Cols() != 68 {
		t.Fatal("sensor shape")
	}
	count := 0
	var anomalySum, normalSum float64
	var anomalyN, normalN int
	for i, a := range anomalies {
		rowMean := 0.0
		for _, v := range x.Row(i) {
			rowMean += v
		}
		rowMean /= 68
		if a {
			count++
			anomalySum += rowMean
			anomalyN++
		} else {
			normalSum += rowMean
			normalN++
		}
	}
	if count < 5 || count > 60 {
		t.Fatalf("anomaly count %d", count)
	}
	// Injected failures shift the sensor levels visibly.
	if anomalySum/float64(anomalyN) < normalSum/float64(normalN)+3 {
		t.Fatal("anomalies not separated from normal readings")
	}
	if math.IsNaN(anomalySum) {
		t.Fatal("NaN telemetry")
	}
}
