// Package data generates the synthetic workloads of the ExDRa evaluation
// (§6.1): a mixed categorical/continuous table resembling the paper
// production use case (encoding to ~1,050 one-hot features at full scale),
// an MNIST-like image set for the CNN experiment, and fertilizer-mill
// sensor readings for the anomaly-detection pipeline. All generators are
// deterministic given their seed.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/transform"
)

// Regression returns a dense feature matrix X ~ N(0,1) and targets
// y = X w* + noise from a hidden linear model — the numeric workload for
// LM-style experiments.
func Regression(seed int64, rows, cols int, noise float64) (x, y *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	x = matrix.Randn(rng, rows, cols, 0, 1)
	wStar := matrix.Randn(rng, cols, 1, 0, 1)
	y = x.MatMul(wStar)
	for i := range y.Data() {
		y.Data()[i] += noise * rng.NormFloat64()
	}
	return x, y
}

// Classification returns features and labels in {-1, +1} separated by a
// hidden hyperplane with the given label-flip rate.
func Classification(seed int64, rows, cols int, flip float64) (x, y *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	x = matrix.Randn(rng, rows, cols, 0, 1)
	wStar := matrix.Randn(rng, cols, 1, 0, 1)
	scores := x.MatMul(wStar)
	y = matrix.NewDense(rows, 1)
	for i, s := range scores.Data() {
		v := 1.0
		if s < 0 {
			v = -1
		}
		if rng.Float64() < flip {
			v = -v
		}
		y.Data()[i] = v
	}
	return x, y
}

// MultiClass returns features drawn from k Gaussian blobs and 1-based class
// labels.
func MultiClass(seed int64, rows, cols, k int) (x, y *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	centers := matrix.Randn(rng, k, cols, 0, 4)
	x = matrix.NewDense(rows, cols)
	y = matrix.NewDense(rows, 1)
	for i := 0; i < rows; i++ {
		c := rng.Intn(k)
		y.Set(i, 0, float64(c+1))
		for j := 0; j < cols; j++ {
			x.Set(i, j, centers.At(c, j)+rng.NormFloat64())
		}
	}
	return x, y
}

// Blobs returns rows drawn from k spherical Gaussian clusters (for K-Means
// and GMM experiments) together with the true assignment.
func Blobs(seed int64, rows, cols, k int, spread float64) (x *matrix.Dense, assign []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := matrix.Randn(rng, k, cols, 0, 8)
	x = matrix.NewDense(rows, cols)
	assign = make([]int, rows)
	for i := 0; i < rows; i++ {
		c := rng.Intn(k)
		assign[i] = c
		for j := 0; j < cols; j++ {
			x.Set(i, j, centers.At(c, j)+spread*rng.NormFloat64())
		}
	}
	return x, assign
}

// PaperProductionConfig scales the paper-production table.
type PaperProductionConfig struct {
	Rows int
	// ContinuousCols is the number of numeric process signals (paper: 97
	// signals; default 50).
	ContinuousCols int
	// RecipeCategories is the cardinality of the recipe-ID column
	// (default 1000 — together with the numeric columns this one-hot
	// encodes to roughly the paper's 1,050 features).
	RecipeCategories int
	// NullRate injects NULLs into the categorical quality class.
	NullRate float64
	Seed     int64
}

// PaperProduction generates the raw table of the paper production use case
// (§2.2): continuous process signals (pulp quality, powers, inflows,
// speeds, torques, humidity), a categorical recipe ID, a categorical
// quality class with NULLs, and a continuous z-strength target column named
// "zstrength". Encoding it with PaperProductionSpec yields the
// 1M x ~1,050 matrix shape of §6.1 at full scale.
func PaperProduction(cfg PaperProductionConfig) *frame.Frame {
	if cfg.Rows == 0 {
		cfg.Rows = 1000
	}
	if cfg.ContinuousCols == 0 {
		cfg.ContinuousCols = 50
	}
	if cfg.RecipeCategories == 0 {
		cfg.RecipeCategories = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols := make([]*frame.Column, 0, cfg.ContinuousCols+3)

	signals := make([][]float64, cfg.ContinuousCols)
	for j := range signals {
		signals[j] = make([]float64, cfg.Rows)
	}
	recipes := make([]string, cfg.Rows)
	quality := make([]string, cfg.Rows)
	target := make([]float64, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		r := rng.Intn(cfg.RecipeCategories)
		recipes[i] = fmt.Sprintf("R%03d", r)
		recipeEffect := math.Sin(float64(r))
		z := 2*recipeEffect + 0.5*rng.NormFloat64()
		for j := 0; j < cfg.ContinuousCols; j++ {
			v := rng.NormFloat64() + 0.3*recipeEffect
			signals[j][i] = v
			z += 0.05 * v * math.Cos(float64(j))
		}
		target[i] = z
		switch {
		case rng.Float64() < cfg.NullRate:
			quality[i] = "" // NULL, to be imputed downstream
		case z > 0.5:
			quality[i] = "A"
		case z > -0.5:
			quality[i] = "B"
		default:
			quality[i] = "C"
		}
	}
	for j := range signals {
		cols = append(cols, frame.FloatColumn(fmt.Sprintf("signal_%02d", j), signals[j]))
	}
	cols = append(cols,
		frame.StringColumn("recipe", recipes),
		frame.StringColumn("quality", quality),
		frame.FloatColumn("zstrength", target),
	)
	return frame.MustNew(cols...)
}

// PaperProductionSpec is the transformencode spec for the table: recode +
// one-hot the recipe and quality class, pass the signals and target through.
func PaperProductionSpec() transform.Spec {
	return transform.Spec{Columns: []transform.ColumnSpec{
		{Name: "recipe", Method: transform.Recode, OneHot: true},
		{Name: "quality", Method: transform.Recode, OneHot: true},
	}}
}

// SyntheticMNIST generates an MNIST-shaped dataset: n x 784 images whose
// non-zero fraction sits just below the internal sparsity threshold (the
// property the paper blames for SystemDS' sparse conv2d path on MNIST) and
// 1-based labels 1..10 derived from the stroke pattern.
func SyntheticMNIST(seed int64, n int) (x, y *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	x = matrix.NewDense(n, 784)
	y = matrix.NewDense(n, 1)
	for i := 0; i < n; i++ {
		label := rng.Intn(10)
		y.Set(i, 0, float64(label+1))
		// Draw a class-specific blob pattern: a few Gaussian "strokes"
		// whose position depends on the label, ~20% non-zeros.
		for s := 0; s < 3; s++ {
			cx := 6 + (label*5+s*7)%18
			cy := 6 + (label*3+s*11)%18
			for dy := -3; dy <= 3; dy++ {
				for dx := -3; dx <= 3; dx++ {
					px, py := cx+dx, cy+dy
					if px < 0 || px >= 28 || py < 0 || py >= 28 {
						continue
					}
					v := math.Exp(-float64(dx*dx+dy*dy)/4) * (0.7 + 0.3*rng.Float64())
					if v > 0.1 {
						x.Set(i, py*28+px, v)
					}
				}
			}
		}
	}
	return x, y
}

// FertilizerSensors generates a window of the grinding-mill telemetry of
// §2.1: 68 sensor channels at 1-second granularity (power, currents,
// temperatures, pressures, tank levels, speeds, vibrations, air flows,
// humidity, weights) with rare injected anomalies. It returns the readings
// and the ground-truth anomaly flags.
func FertilizerSensors(seed int64, seconds int, anomalyRate float64) (x *matrix.Dense, anomalies []bool) {
	const channels = 68
	rng := rand.New(rand.NewSource(seed))
	x = matrix.NewDense(seconds, channels)
	anomalies = make([]bool, seconds)
	base := make([]float64, channels)
	for j := range base {
		base[j] = 10 + 5*rng.Float64()
	}
	for i := 0; i < seconds; i++ {
		anomalous := rng.Float64() < anomalyRate
		anomalies[i] = anomalous
		for j := 0; j < channels; j++ {
			drift := math.Sin(float64(i)/60 + float64(j))
			v := base[j] + drift + 0.2*rng.NormFloat64()
			if anomalous {
				v += 6 + 3*rng.Float64() // failure spike across channels
			}
			x.Set(i, j, v)
		}
	}
	return x, anomalies
}
