package fedserve

import (
	"fmt"
	"sync"
	"time"

	"exdra/internal/federated"
)

// Session is one client's coordinator lease on the shared fleet. Its
// object IDs live in a private namespace (federated.Fleet.NewSession), so
// concurrent sessions' worker-side symbol tables never collide; its
// lifecycle is create (Service.Open) → run (Begin/Coordinator) → close
// (Close, the idle reaper, or drain), with the namespace-scoped CLEAR on
// close guaranteeing no worker objects outlive it.
type Session struct {
	id    string
	svc   *Service
	coord *federated.Coordinator

	mu            sync.Mutex
	lastUsed      time.Time // guarded by mu
	inFlight      int       // in-flight batches admitted by Begin; guarded by mu
	inFlightBytes int64     // summed payload bytes of those batches; guarded by mu
	closed        bool      // guarded by mu
}

// ID returns the session's service-unique identifier.
func (s *Session) ID() string { return s.id }

// Coordinator returns the session's namespace-scoped coordinator. Use it
// for federated operations between Begin/release pairs.
func (s *Session) Coordinator() *federated.Coordinator { return s.coord }

// Namespace returns the session's object-ID namespace.
func (s *Session) Namespace() int64 { return s.coord.Namespace() }

// Begin admits one batch of work carrying roughly `bytes` of payload.
// It enforces the per-session quotas (MaxInFlight, MaxInFlightBytes) and
// the service drain barrier, failing fast with ErrAdmissionRejected /
// ErrDraining / ErrSessionClosed. On success the caller MUST invoke the
// returned release exactly once when the batch completes (success or
// failure) — drain waits on it.
func (s *Session) Begin(bytes int64) (release func(), err error) {
	if err := s.svc.beginOp(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.svc.endOp()
		return nil, ErrSessionClosed
	}
	cfg := s.svc.cfg
	if cfg.MaxInFlight > 0 && s.inFlight >= cfg.MaxInFlight {
		n := s.inFlight
		s.mu.Unlock()
		s.svc.endOp()
		s.svc.reg.Counter("serve.rejections").Inc()
		return nil, fmt.Errorf("fedserve: session %s: %d batches in flight (max %d): %w",
			s.id, n, cfg.MaxInFlight, ErrAdmissionRejected)
	}
	if cfg.MaxInFlightBytes > 0 && s.inFlightBytes+bytes > cfg.MaxInFlightBytes {
		b := s.inFlightBytes
		s.mu.Unlock()
		s.svc.endOp()
		s.svc.reg.Counter("serve.rejections").Inc()
		return nil, fmt.Errorf("fedserve: session %s: %d+%d in-flight bytes (max %d): %w",
			s.id, b, bytes, cfg.MaxInFlightBytes, ErrAdmissionRejected)
	}
	s.inFlight++
	s.inFlightBytes += bytes
	s.lastUsed = time.Now()
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.inFlight--
			s.inFlightBytes -= bytes
			s.lastUsed = time.Now()
			s.mu.Unlock()
			s.svc.endOp()
		})
	}, nil
}

// InFlight returns the session's current in-flight batch count.
func (s *Session) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inFlight
}

// idleFor reports whether the session has no in-flight work and no
// activity for at least d.
func (s *Session) idleFor(d time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && s.inFlight == 0 && time.Since(s.lastUsed) >= d
}

// Close ends the session: its worker-side objects are released via the
// namespace-scoped CLEAR (best effort — an unreachable worker's bindings
// die with the worker or its own idle handling), and its coordinator shuts
// down. Later Begin calls fail with ErrSessionClosed. Idempotent.
func (s *Session) Close() { s.close("serve.sessions.closed") }

// closeReaped is Close via the idle reaper, counted separately.
func (s *Session) closeReaped() { s.close("serve.sessions.reaped") }

func (s *Session) close(counter string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if !s.svc.deregister(s.id) {
		return // lost the close race; the winner does the cleanup
	}
	// Count the close when the session leaves the table, not after the
	// network teardown below — observers correlating the counters with
	// NumSessions must never see a deregistered-but-uncounted window.
	s.svc.reg.Counter(counter).Inc()
	s.svc.reg.Gauge("serve.sessions.open").Add(-1)
	// Network teardown happens outside every lock: the scoped CLEAR
	// releases this session's objects on each touched worker without
	// disturbing other sessions' state.
	_ = s.coord.ClearAll()
	s.coord.Close()
}
