package fedserve_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedserve"
	"exdra/internal/fedtest"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// startFleet brings up an in-process federation plus a service over its
// shared fleet.
func startFleet(t *testing.T, workers, poolSize int, cfg fedserve.Config) (*fedtest.Cluster, *fedserve.Service) {
	t.Helper()
	cl, err := fedtest.Start(fedtest.Config{Workers: workers, PoolSize: poolSize, Metrics: cfg.Metrics})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	svc := fedserve.New(cl.Fleet, cfg)
	t.Cleanup(svc.Close)
	return cl, svc
}

// lmWeightBits runs one seeded LM training through coord over addrs and
// returns the exact bit patterns of the learned weights.
func lmWeightBits(t *testing.T, coord *federated.Coordinator, addrs []string, seed int64) []uint64 {
	t.Helper()
	x, y := data.Regression(seed, 240, 8, 0.01)
	fx, err := federated.Distribute(coord, x, addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Free()
	res, err := algo.LM(fx, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Weights.Data()
	bits := make([]uint64, len(w))
	for i, v := range w {
		bits[i] = math.Float64bits(v)
	}
	return bits
}

// TestConcurrentSessionsBitwiseEqualSolo is the acceptance e2e: K sessions
// train seeded LMs simultaneously over one shared 2-worker fleet, and each
// result is bitwise identical to the same seed trained alone on its own
// fleet. Interference of any kind — colliding worker objects, cross-session
// clears, pool-level response mixups — shows up as differing bits.
func TestConcurrentSessionsBitwiseEqualSolo(t *testing.T) {
	const K = 4
	seeds := []int64{11, 22, 33, 44}

	// Solo baselines: each seed on a private 2-worker federation.
	solo := make([][]uint64, K)
	for i, seed := range seeds {
		cl, err := fedtest.Start(fedtest.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = lmWeightBits(t, cl.Coord, cl.Addrs, seed)
		cl.Close()
	}

	// The same seeds, concurrently, as sessions of one shared fleet.
	cl, svc := startFleet(t, 2, K, fedserve.Config{})
	got := make([][]uint64, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		sess, err := svc.Open()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *fedserve.Session) {
			defer wg.Done()
			release, err := sess.Begin(0)
			if err != nil {
				t.Error(err)
				return
			}
			defer release()
			got[i] = lmWeightBits(t, sess.Coordinator(), cl.Addrs, seeds[i])
		}(i, sess)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := range seeds {
		if len(got[i]) != len(solo[i]) {
			t.Fatalf("seed %d: weight length %d vs solo %d", seeds[i], len(got[i]), len(solo[i]))
		}
		for j := range got[i] {
			if got[i][j] != solo[i][j] {
				t.Fatalf("seed %d: weight %d differs bitwise from solo run (%#x vs %#x)",
					seeds[i], j, got[i][j], solo[i][j])
			}
		}
	}

	// Teardown leaves zero worker objects behind.
	for _, sess := range svc.Sessions() {
		sess.Close()
	}
	for i, w := range cl.Workers {
		if n := w.NumObjects(); n != 0 {
			t.Fatalf("worker %d: %d objects leaked after session closes", i, n)
		}
	}
}

// TestDrainFinishesInFlightAndLeaksNothing exercises the SIGTERM path:
// drain refuses new admissions, waits for in-flight batches, then removes
// every session's worker-side state.
func TestDrainFinishesInFlightAndLeaksNothing(t *testing.T) {
	cl, svc := startFleet(t, 2, 2, fedserve.Config{})
	sess, err := svc.Open()
	if err != nil {
		t.Fatal(err)
	}

	// Park an in-flight batch that holds real worker objects.
	release, err := sess.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := data.Regression(3, 60, 4, 0.01)
	fx, err := federated.Distribute(sess.Coordinator(), x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	_ = fx

	drained := make(chan error, 1)
	go func() { drained <- svc.Drain(context.Background()) }()

	// New sessions and new batches are refused while draining.
	waitFor(t, func() bool {
		_, err := svc.Open()
		return errors.Is(err, fedserve.ErrDraining)
	})
	if _, err := sess.Begin(0); !errors.Is(err, fedserve.ErrDraining) {
		t.Fatalf("Begin during drain: got %v, want ErrDraining", err)
	}

	// Drain must be blocked on the in-flight batch.
	select {
	case err := <-drained:
		t.Fatalf("drain returned before in-flight batch finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	for i, w := range cl.Workers {
		if n := w.NumObjects(); n != 0 {
			t.Fatalf("worker %d: %d objects leaked through drain", i, n)
		}
	}
}

// TestDrainDeadlineBoundsShutdown: a batch that never completes cannot hang
// shutdown — drain gives up at its deadline, tears sessions down anyway,
// and reports the deadline error.
func TestDrainDeadlineBoundsShutdown(t *testing.T) {
	_, svc := startFleet(t, 1, 1, fedserve.Config{})
	sess, err := svc.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Begin(0); err != nil { // never released
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck batch: got %v, want deadline", err)
	}
	if svc.NumSessions() != 0 {
		t.Fatal("sessions survived deadline drain")
	}
}

// TestAdmissionControl: over-quota sessions and batches fail fast with the
// typed error, visible in serve.rejections.
func TestAdmissionControl(t *testing.T) {
	reg := obs.New()
	_, svc := startFleet(t, 1, 1, fedserve.Config{
		MaxSessions:      2,
		MaxInFlight:      2,
		MaxInFlightBytes: 1000,
		Metrics:          reg,
	})

	s1, err := svc.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(); !errors.Is(err, fedserve.ErrAdmissionRejected) {
		t.Fatalf("third session: got %v, want ErrAdmissionRejected", err)
	}
	if v := reg.Counter("serve.rejections").Value(); v != 1 {
		t.Fatalf("serve.rejections = %d, want 1", v)
	}

	// Batch-count quota.
	r1, err := s1.Begin(100)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s1.Begin(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Begin(100); !errors.Is(err, fedserve.ErrAdmissionRejected) {
		t.Fatalf("over MaxInFlight: got %v, want ErrAdmissionRejected", err)
	}
	r1()
	r1() // double release is a no-op, not a quota corruption

	// Byte quota: 100 in flight, 1000 max → 901 more must be refused,
	// 900 admitted.
	if _, err := s1.Begin(901); !errors.Is(err, fedserve.ErrAdmissionRejected) {
		t.Fatalf("over MaxInFlightBytes: got %v, want ErrAdmissionRejected", err)
	}
	r3, err := s1.Begin(900)
	if err != nil {
		t.Fatal(err)
	}
	r3()
	r2()
	if v := reg.Counter("serve.rejections").Value(); v != 3 {
		t.Fatalf("serve.rejections = %d, want 3", v)
	}

	// Closed sessions refuse work with the session-closed error, not a
	// quota error.
	s1.Close()
	if _, err := s1.Begin(0); !errors.Is(err, fedserve.ErrSessionClosed) {
		t.Fatalf("Begin on closed session: got %v, want ErrSessionClosed", err)
	}
}

// TestIdleReap: a session abandoned without Close is reaped after
// IdleTimeout and its worker objects reclaimed.
func TestIdleReap(t *testing.T) {
	reg := obs.New()
	cl, svc := startFleet(t, 2, 1, fedserve.Config{
		IdleTimeout:  150 * time.Millisecond,
		ReapInterval: 50 * time.Millisecond,
		Metrics:      reg,
	})
	sess, err := svc.Open()
	if err != nil {
		t.Fatal(err)
	}
	release, err := sess.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := data.Regression(5, 60, 4, 0.01)
	if _, err := federated.Distribute(sess.Coordinator(), x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation); err != nil {
		t.Fatal(err)
	}
	release()

	waitFor(t, func() bool { return svc.NumSessions() == 0 })
	if v := reg.Counter("serve.sessions.reaped").Value(); v != 1 {
		t.Fatalf("serve.sessions.reaped = %d, want 1", v)
	}
	// The reaper's scoped CLEAR runs after the session leaves the table;
	// poll until the workers are clean.
	waitFor(t, func() bool {
		for _, w := range cl.Workers {
			if w.NumObjects() != 0 {
				return false
			}
		}
		return true
	})
	if _, err := sess.Begin(0); !errors.Is(err, fedserve.ErrSessionClosed) {
		t.Fatalf("Begin on reaped session: got %v, want ErrSessionClosed", err)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
