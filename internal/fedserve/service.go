// Package fedserve is the standing coordinator service: it multiplexes many
// concurrent sessions over one shared federated worker fleet.
//
// The paper's ExDRa prototype pairs one interactive data scientist with one
// control program, so its coordinator assumes it owns the workers' symbol
// tables and connections outright. A production deployment (ROADMAP north
// star) serves heavy concurrent traffic instead: many exploratory sessions
// against the same raw-data sites at once. fedserve supplies the missing
// subsystem — the session lifecycle (create → run → close with guaranteed
// cleanup, plus idle-timeout reaping), admission control with per-session
// quotas, and graceful drain — on top of the sharing substrate the
// federated.Fleet provides (per-address connection pools, shared circuit
// breakers, session ID namespaces).
//
// Observability: serve.sessions.opened / closed / reaped counters, the
// serve.sessions.open gauge, and serve.rejections for admission failures;
// the fleet's pools report serve.pool.* underneath.
package fedserve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/federated"
	"exdra/internal/obs"
)

// ErrAdmissionRejected marks work refused by admission control: a new
// session beyond MaxSessions, or a batch beyond a session's in-flight
// quota. It is a load-shedding signal, not a failure of the work itself —
// callers (e.g. an HTTP front end) should map it to "try again later" and
// can errors.Is for it. Every rejection increments serve.rejections.
var ErrAdmissionRejected = errors.New("fedserve: admission rejected")

// ErrDraining marks requests refused because the service is shutting down:
// drain stops admitting new sessions and new batches while in-flight work
// finishes under its own deadlines.
var ErrDraining = errors.New("fedserve: service is draining")

// ErrSessionClosed marks operations on a session that was closed — by its
// owner, by the idle reaper, or by drain.
var ErrSessionClosed = errors.New("fedserve: session closed")

// Config tunes the service. The zero value of any field means "unlimited"
// (or, for ReapInterval, a default derived from IdleTimeout).
type Config struct {
	// MaxSessions caps concurrently open sessions; Open beyond it fails
	// fast with ErrAdmissionRejected.
	MaxSessions int
	// MaxInFlight caps in-flight batches per session; Begin beyond it
	// fails fast with ErrAdmissionRejected.
	MaxInFlight int
	// MaxInFlightBytes caps the summed payload bytes of a session's
	// in-flight batches.
	MaxInFlightBytes int64
	// IdleTimeout, when positive, lets the reaper close sessions with no
	// in-flight work and no activity for this long, reclaiming their
	// worker-side objects. Clients holding a reaped session see
	// ErrSessionClosed on their next batch.
	IdleTimeout time.Duration
	// ReapInterval is the reaper's scan period (default IdleTimeout/4,
	// floored at 100ms). Only meaningful with IdleTimeout > 0.
	ReapInterval time.Duration
	// Retry, CallTimeout, and Recover configure each session's coordinator
	// like their fedtest counterparts.
	Retry       federated.RetryPolicy
	CallTimeout time.Duration
	Recover     bool
	// Metrics is the registry the serve.* series report into (nil uses
	// obs.Default()).
	Metrics *obs.Registry
}

// Service is a standing multi-session coordinator service over one shared
// worker fleet. It admits sessions (Open), gates their traffic (quotas via
// Session.Begin), reaps idle ones, and drains cleanly on shutdown. The
// fleet's lifecycle stays with the caller: Close tears down every session's
// worker-side state but leaves the fleet's connections to their owner.
type Service struct {
	cfg   Config
	fleet *federated.Fleet
	reg   *obs.Registry

	mu       sync.Mutex
	sessions map[string]*Session // guarded by mu
	draining bool                // guarded by mu
	closed   bool                // guarded by mu

	done     chan struct{} // closed by Close; stops the reaper
	opWg     sync.WaitGroup
	reaperWg sync.WaitGroup
	nextSess atomic.Int64
}

// New creates a service over fleet and starts its idle reaper (when
// IdleTimeout is configured).
func New(fleet *federated.Fleet, cfg Config) *Service {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	s := &Service{
		cfg:      cfg,
		fleet:    fleet,
		reg:      reg,
		sessions: map[string]*Session{},
		done:     make(chan struct{}),
	}
	if cfg.IdleTimeout > 0 {
		s.reaperWg.Add(1)
		go s.reapLoop()
	}
	return s
}

// Fleet returns the shared worker fleet this service multiplexes over.
func (s *Service) Fleet() *federated.Fleet { return s.fleet }

// Open admits one new session: a fresh coordinator view of the shared
// fleet under its own object namespace. Over MaxSessions it fails fast
// with ErrAdmissionRejected; during drain, with ErrDraining.
func (s *Service) Open() (*Session, error) {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		n := len(s.sessions)
		s.mu.Unlock()
		s.reg.Counter("serve.rejections").Inc()
		return nil, fmt.Errorf("fedserve: %d sessions open (max %d): %w",
			n, s.cfg.MaxSessions, ErrAdmissionRejected)
	}
	id := "s" + strconv.FormatInt(s.nextSess.Add(1), 10)
	s.mu.Unlock()

	// The coordinator is built outside s.mu (it touches fleet state); the
	// session count may briefly overshoot between the check above and the
	// re-insert below only if Open races itself, so re-check on insert.
	coord, err := s.fleet.NewSession()
	if err != nil {
		return nil, err
	}
	if s.cfg.Retry != (federated.RetryPolicy{}) {
		coord.SetRetryPolicy(s.cfg.Retry)
	}
	coord.SetCallTimeout(s.cfg.CallTimeout)
	coord.EnableRecovery(s.cfg.Recover)
	sess := &Session{id: id, svc: s, coord: coord, lastUsed: time.Now()}

	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		coord.Close()
		return nil, ErrDraining
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		n := len(s.sessions)
		s.mu.Unlock()
		coord.Close()
		s.reg.Counter("serve.rejections").Inc()
		return nil, fmt.Errorf("fedserve: %d sessions open (max %d): %w",
			n, s.cfg.MaxSessions, ErrAdmissionRejected)
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.reg.Counter("serve.sessions.opened").Inc()
	s.reg.Gauge("serve.sessions.open").Add(1)
	return sess, nil
}

// Session returns an open session by ID, or nil.
func (s *Service) Session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// Sessions snapshots the open sessions.
func (s *Service) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// NumSessions returns the number of open sessions.
func (s *Service) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// deregister removes a closing session from the table. It reports whether
// the session was still registered (false = someone else closed it first).
func (s *Service) deregister(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	return true
}

// beginOp gates one unit of in-flight work on the drain barrier. On
// success the service's operation count includes it until endOp.
func (s *Service) beginOp() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return ErrDraining
	}
	s.opWg.Add(1)
	return nil
}

func (s *Service) endOp() { s.opWg.Done() }

// Drain gracefully shuts the service down: stop admitting sessions and
// batches, wait for in-flight batches to finish (they complete under their
// own deadline machinery), then close every session — releasing all its
// worker-side objects via its namespace-scoped CLEAR. If ctx expires while
// in-flight work is still running, Drain proceeds to teardown anyway and
// returns ctx's error: a bounded drain beats a hung shutdown.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	waited := make(chan struct{})
	go func() {
		s.opWg.Wait()
		close(waited)
	}()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		err = fmt.Errorf("fedserve: drain: %w", ctx.Err())
	}
	for _, sess := range s.Sessions() {
		sess.Close()
	}
	return err
}

// Close stops the reaper and closes every remaining session (without the
// drain grace — callers wanting graceful shutdown call Drain first). The
// shared fleet is left to its owner. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.reaperWg.Wait()
	for _, sess := range s.Sessions() {
		sess.Close()
	}
}

// reapLoop periodically closes sessions that have sat idle — no in-flight
// batches, no activity — past IdleTimeout, reclaiming their worker-side
// objects. An abandoned exploratory session (the data scientist went to
// lunch, the client crashed without Close) must not pin symbol-table
// memory on every worker forever.
func (s *Service) reapLoop() {
	defer s.reaperWg.Done()
	interval := s.cfg.ReapInterval
	if interval <= 0 {
		interval = s.cfg.IdleTimeout / 4
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		for _, sess := range s.Sessions() {
			if sess.idleFor(s.cfg.IdleTimeout) {
				sess.closeReaped()
			}
		}
		t.Reset(interval)
	}
}
