package fedrpc

import (
	"errors"
	"testing"

	"exdra/internal/matrix"
	"exdra/internal/netem"
)

// TestCloseIdempotentAfterBroken pins the Close contract across the broken
// state: a client whose transport already died (injected reset) can be
// closed any number of times, releasing resources exactly once, and every
// later operation fails with the typed ErrClosed instead of redialing.
func TestCloseIdempotentAfterBroken(t *testing.T) {
	s, _ := startServer(t, Options{})
	faults := netem.NewFaults(netem.FaultConfig{Seed: 3, ConnResets: 1, ResetAfterBytes: 256})
	c, err := Dial(s.Addr(), Options{Netem: netem.Config{Faults: faults}})
	if err != nil {
		t.Fatal(err)
	}
	payload := MatrixPayload(matrix.Fill(16, 16, 1)) // ~2 KB: crosses the threshold
	if _, err := c.Call(Request{Type: Put, ID: 1, Data: payload}); !errors.Is(err, netem.ErrInjectedReset) {
		t.Fatalf("want injected reset, got: %v", err)
	}
	if !c.Broken() {
		t.Fatal("client not broken after injected reset")
	}
	// Close on a broken client: the transport is already gone, so there is
	// nothing left to release — both calls must succeed and stay final.
	if err := c.Close(); err != nil {
		t.Fatalf("Close after broken: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if c.Broken() {
		t.Fatal("closed client reported broken")
	}
	if _, err := c.Call(Request{Type: Get, ID: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after Close = %v, want ErrClosed (no redial)", err)
	}
	if err := c.Redial(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Redial after Close = %v, want ErrClosed", err)
	}
}

// TestCloseReturnsErrClosedTyped: a live client closed once also yields
// the typed sentinel on further use.
func TestCloseReturnsErrClosedTyped(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	_, err = c.Call(Request{Type: Get, ID: 1})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after Close = %v, want ErrClosed", err)
	}
}
