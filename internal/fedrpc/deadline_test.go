package fedrpc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// deadlineProbeHandler records whether the server-reconstructed context of
// each batch carried a deadline, and how far away it was.
type deadlineProbeHandler struct {
	mu      sync.Mutex
	budgets []time.Duration // -1 = no deadline on the context
}

func (h *deadlineProbeHandler) Handle(reqs []Request) []Response {
	return h.HandleContext(context.Background(), reqs)
}

func (h *deadlineProbeHandler) HandleContext(ctx context.Context, reqs []Request) []Response {
	budget := time.Duration(-1)
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
	}
	h.mu.Lock()
	h.budgets = append(h.budgets, budget)
	h.mu.Unlock()
	out := make([]Response, len(reqs))
	for i := range out {
		out[i] = Response{OK: true}
	}
	return out
}

// stallHandler blocks each batch until its context dies or release is
// closed, so tests can park a call mid-exchange (to queue a second one
// behind it) or force the server's deadline backstop to fire.
type stallHandler struct {
	release chan struct{}
}

func (h *stallHandler) Handle(reqs []Request) []Response {
	return h.HandleContext(context.Background(), reqs)
}

func (h *stallHandler) HandleContext(ctx context.Context, reqs []Request) []Response {
	select {
	case <-ctx.Done():
	case <-h.release:
	}
	out := make([]Response, len(reqs))
	for i := range out {
		out[i] = Response{OK: true}
	}
	return out
}

// TestDeadlineTravelsToHandler pins the tentpole's wire half in both
// framings: a caller deadline becomes a relative budget in the request
// envelope, and the server reconstructs a context whose deadline is at most
// that budget away. A call without a deadline must reach the handler with
// an unbounded context — absent field means "no deadline", which is also
// what an old peer's envelope decodes to.
func TestDeadlineTravelsToHandler(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"binary", Options{}},
		{"gob", Options{ForceGob: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := &deadlineProbeHandler{}
			s, err := Serve("127.0.0.1:0", h, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			c, err := Dial(s.Addr(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const budget = 5 * time.Second
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			defer cancel()
			if _, err := c.CallCtx(ctx, Request{Type: Health}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.CallCtx(context.Background(), Request{Type: Health}); err != nil {
				t.Fatal(err)
			}

			h.mu.Lock()
			budgets := append([]time.Duration(nil), h.budgets...)
			h.mu.Unlock()
			if len(budgets) != 2 {
				t.Fatalf("handler saw %d batches, want 2", len(budgets))
			}
			if budgets[0] <= 0 || budgets[0] > budget {
				t.Fatalf("deadlined call reached handler with budget %v, want (0, %v]", budgets[0], budget)
			}
			if budgets[1] != -1 {
				t.Fatalf("deadline-free call reached handler with a deadline (%v away)", budgets[1])
			}
		})
	}
}

// TestServerBackstopRepliesTypedDeadline pins the server half of "stalled
// worker, no hang": when the handler blows the wire budget, the server
// abandons it and replies with CodeDeadlineExceeded inside the client's
// grace window — the exchange itself succeeds, no transport teardown.
func TestServerBackstopRepliesTypedDeadline(t *testing.T) {
	h := &stallHandler{release: make(chan struct{})}
	defer close(h.release)
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const budget = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	resps, err := c.CallCtx(ctx, Request{Type: Health}, Request{Type: Health})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("backstop reply should arrive as a normal exchange, got %v", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("typed reply took %v, want within ~2x the %v budget", elapsed, budget)
	}
	for i, r := range resps {
		if r.OK || r.Code != CodeDeadlineExceeded {
			t.Fatalf("response %d = {OK:%v Code:%d}, want typed DEADLINE_EXCEEDED", i, r.OK, r.Code)
		}
	}
	// The transport survived: the connection was not torn down.
	if c.Broken() {
		t.Fatal("typed deadline reply must not break the transport")
	}
}

// TestExpiredBudgetFailsBeforeWire: a context that is already past its
// deadline fails with the typed error without consuming the exchange.
func TestExpiredBudgetFailsBeforeWire(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = c.CallCtx(ctx, Request{Type: Health})
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired budget error = %v, want ErrDeadlineExceeded wrapping context.DeadlineExceeded", err)
	}
	// The client is still usable for the next call.
	if _, err := c.CallCtx(context.Background(), Request{Type: Health}); err != nil {
		t.Fatalf("client unusable after an expired-budget rejection: %v", err)
	}
}

// TestQueuedCancelReturnsCtxErr is the satellite regression: cancelling a
// call that is still queued behind another exchange must return ctx.Err()
// itself — not a transport error — and must not tear down the connection
// the in-flight exchange is using. Run under -race, this also pins the
// exchange-semaphore handoff.
func TestQueuedCancelReturnsCtxErr(t *testing.T) {
	h := &stallHandler{release: make(chan struct{})}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Park the first call mid-exchange: it holds the serializer until the
	// handler is released.
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.CallCtx(context.Background(), Request{Type: Health})
		firstDone <- err
	}()
	// Give the first call time to win the exchange and reach the server.
	time.Sleep(50 * time.Millisecond)

	// The second call queues; cancel it while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err = c.CallCtx(ctx, Request{Type: Health})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel error = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued cancel misclassified as a deadline blowout: %v", err)
	}

	// The in-flight exchange was untouched: release the handler and the
	// first call completes normally on the same connection.
	close(h.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("in-flight call broken by a queued cancel: %v", err)
	}
	if c.Broken() {
		t.Fatal("queued cancel tore down the transport")
	}
	if _, err := c.CallCtx(context.Background(), Request{Type: Health}); err != nil {
		t.Fatalf("client unusable after queued cancel: %v", err)
	}
}

// TestMidExchangeCancelInterruptsPromptly: cancelling the context of the
// exchange that is actually on the wire interrupts the blocked I/O well
// before the transport's coarse I/O timeout, and classifies the error as
// the caller's cancellation.
func TestMidExchangeCancelInterruptsPromptly(t *testing.T) {
	h := &stallHandler{release: make(chan struct{})}
	defer close(h.release)
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.CallCtx(ctx, Request{Type: Health})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-exchange cancel error = %v, want to wrap context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancel took %v to interrupt the exchange", d)
	}
}
