package fedrpc

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exdra/internal/matrix"
	"exdra/internal/netem"
	"exdra/internal/obs"
)

// warm resolves a fresh client's pipelining probe (the first call always
// runs lock-step) so the tests below start with the window fully open.
func warm(t *testing.T, c *Client) {
	t.Helper()
	if _, err := c.Call(Request{Type: Clear}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineOutOfOrderReplies pins the tentpole behavior: two calls in
// flight on ONE connection, where the first to be sent is the last to be
// answered. The fast call must complete while the slow one is still parked
// in its handler — impossible under lock-step — and both must succeed.
func TestPipelineOutOfOrderReplies(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	h := HandlerFunc(func(reqs []Request) []Response {
		out := make([]Response, len(reqs))
		for i, r := range reqs {
			if r.Type == Get && r.ID == 1 {
				entered <- struct{}{}
				<-block // park the slow call until released
			}
			out[i] = Response{OK: true}
		}
		return out
	})
	s, err := Serve("127.0.0.1:0", h, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{Metrics: obs.New(), Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	warm(t, c)
	if got := c.WindowCap(); got != 4 {
		t.Fatalf("WindowCap after tag-aware reply = %d, want 4", got)
	}

	slow := make(chan error, 1)
	go func() {
		_, err := c.Call(Request{Type: Get, ID: 1})
		slow <- err
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("slow call never reached the handler")
	}
	// The slow call is parked server-side. A second call on the same
	// client must go out on the same connection and come back first.
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(Request{Type: Get, ID: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fast call failed while slow call in flight: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fast call did not overtake the parked slow call: pipelining is not overlapping exchanges")
	}
	close(block)
	if err := <-slow; err != nil {
		t.Fatalf("slow call failed: %v", err)
	}
	// Both calls shared the client's single connection: pipelining must
	// not fall back to dialing a second transport.
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	if conns != 1 {
		t.Fatalf("server saw %d connections, want 1 (calls must share the pipelined conn)", conns)
	}
	if c.Broken() {
		t.Fatal("client broken after successful pipelined calls")
	}
}

// lockstepPeer emulates a pre-pipelining worker: pure gob, decodes the
// legacy envelope shape (no Tag field — gob skips the unknown field a new
// client sends), and answers strictly in order with untagged replies.
func lockstepPeer(t *testing.T, mangleTag func(uint64) uint64) net.Listener {
	t.Helper()
	type oldEnvelope struct {
		Requests      []Request
		DeadlineNanos int64
		Tag           uint64 // read so mangleTag can echo a wrong value; old peers would skip it
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var env oldEnvelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					resps := make([]Response, len(env.Requests))
					for i := range resps {
						resps[i] = Response{OK: true}
					}
					if err := enc.Encode(rpcReply{Responses: resps, Tag: mangleTag(env.Tag)}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

// TestUntaggedPeerFallsBackToLockstep pins the compatibility matrix row
// "new client, old worker": the first untagged reply pins the client to
// lock-step for good (sticky across redials, like the gob fallback), and
// calls keep working.
func TestUntaggedPeerFallsBackToLockstep(t *testing.T) {
	ln := lockstepPeer(t, func(uint64) uint64 { return 0 })
	c, err := Dial(ln.Addr().String(), Options{Metrics: obs.New(), ForceGob: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(Request{Type: Clear}); err != nil {
		t.Fatalf("first call against untagged peer: %v", err)
	}
	if got := c.WindowCap(); got != 1 {
		t.Fatalf("WindowCap after untagged reply = %d, want sticky lock-step 1", got)
	}
	// Concurrent calls still work — serialized, exactly like the legacy
	// exchange lock.
	var wg sync.WaitGroup
	var fail atomic.Value
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(Request{Type: Clear}); err != nil {
				fail.Store(err)
			}
		}()
	}
	wg.Wait()
	if err := fail.Load(); err != nil {
		t.Fatalf("lock-step fallback call failed: %v", err)
	}
	// The verdict survives a redial: the peer did not learn tags overnight.
	if err := c.Redial(); err != nil {
		t.Fatal(err)
	}
	if got := c.WindowCap(); got != 1 {
		t.Fatalf("WindowCap after redial = %d, want sticky lock-step 1", got)
	}
	if c.Broken() {
		t.Fatal("client broken after clean lock-step fallback")
	}
}

// TestUnknownTagTearsDownSession: a reply bearing a tag that matches no
// in-flight call is a protocol desync (duplicate, forged, or corrupt); the
// session must fail loudly, not mis-deliver the reply.
func TestUnknownTagTearsDownSession(t *testing.T) {
	ln := lockstepPeer(t, func(tag uint64) uint64 { return tag + 9000 })
	c, err := Dial(ln.Addr().String(), Options{Metrics: obs.New(), ForceGob: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(Request{Type: Clear})
	if err == nil {
		t.Fatal("reply with unknown tag was accepted")
	}
	if !strings.Contains(err.Error(), "unknown call tag") {
		t.Fatalf("err = %v, want the unknown-tag teardown", err)
	}
	if !c.Broken() {
		t.Fatal("client not broken after unknown-tag reply")
	}
}

// TestDuplicateTagReplyTearsDownSession: the first copy of a duplicated
// reply completes its call normally; the stale second copy must kill the
// session the moment it is read (its tag no longer matches anything)
// rather than complete some later call with stale data.
func TestDuplicateTagReplyTearsDownSession(t *testing.T) {
	type oldEnvelope struct {
		Requests      []Request
		DeadlineNanos int64
		Tag           uint64
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		first := true
		for {
			var env oldEnvelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			resps := []Response{{OK: true}}
			if err := enc.Encode(rpcReply{Responses: resps, Tag: env.Tag}); err != nil {
				return
			}
			if first {
				first = false
				// The duplicate: same tag, sent again unprompted.
				if err := enc.Encode(rpcReply{Responses: resps, Tag: env.Tag}); err != nil {
					return
				}
			}
		}
	}()
	c, err := Dial(ln.Addr().String(), Options{Metrics: obs.New(), ForceGob: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(Request{Type: Clear}); err != nil {
		t.Fatalf("first call (first copy of the reply) failed: %v", err)
	}
	// The duplicate is sitting unread in the buffer; the next call's read
	// encounters it first and must refuse to proceed.
	_, err = c.Call(Request{Type: Clear})
	if err == nil {
		t.Fatal("call after duplicated reply succeeded — stale reply was mis-delivered")
	}
	if !strings.Contains(err.Error(), "unknown call tag") {
		t.Fatalf("err = %v, want the unknown-tag teardown", err)
	}
	if !c.Broken() {
		t.Fatal("client not broken after duplicate reply")
	}
}

// TestFailedExchangeBytesMatchAtomics is the regression test for the
// accounting bug where a failed exchange recorded its span before the byte
// deltas were assigned: the rpc.client.bytes_out counter (fed by span
// deltas) silently diverged from the atomic BytesSent total (fed by the
// counting writer) on every transport failure. A mid-write truncation
// leaves real bytes on the wire and then fails the call; counter and
// atomic must still agree, and the failed span must carry its bytes.
func TestFailedExchangeBytesMatchAtomics(t *testing.T) {
	reg := obs.New()
	s, _ := startServer(t, Options{})
	faults := netem.NewFaults(netem.FaultConfig{Seed: 5, Truncations: 1, TruncateAfterBytes: 4096})
	c, err := Dial(s.Addr(), Options{Netem: netem.Config{Faults: faults}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Warmup both counts the handshake-free happy path and resolves the
	// probe, so the failing call below is an ordinary exchange.
	warm(t, c)
	payload := MatrixPayload(matrix.Fill(128, 128, 1)) // ~128 KB: crosses the cut mid-slab
	_, err = c.Call(Request{Type: Put, ID: 1, Data: payload})
	if err == nil {
		t.Fatal("injected truncation did not surface")
	}
	if faults.Stats().Truncations != 1 {
		t.Fatalf("faults injected %d truncations, want 1", faults.Stats().Truncations)
	}
	snap := reg.Snapshot()
	if got, want := snap.Counters["rpc.client.bytes_out"], c.BytesSent(); got != want {
		t.Fatalf("rpc.client.bytes_out = %d, atomic BytesSent = %d: failed exchanges dropped their byte deltas", got, want)
	}
	if got, want := snap.Counters["rpc.client.bytes_in"], c.BytesReceived(); got != want {
		t.Fatalf("rpc.client.bytes_in = %d, atomic BytesReceived = %d", got, want)
	}
	var failed *obs.Span
	for _, sp := range reg.Spans() {
		if sp.Err != "" {
			sp := sp
			failed = &sp
		}
	}
	if failed == nil {
		t.Fatal("no errored span recorded")
	}
	if failed.BytesOut <= 0 {
		t.Fatalf("failed span BytesOut = %d, want the bytes written before the cut", failed.BytesOut)
	}
}

// TestCallOneTypedDeadlineReply is the regression test for the typed-error
// flattening bug: a worker-reported CodeDeadlineExceeded response must
// surface as ErrDeadlineExceeded from CallOne — the same verdict a local
// budget expiry gets — not as an untyped string error that breaker/retry
// logic then misclassifies as retryable.
func TestCallOneTypedDeadlineReply(t *testing.T) {
	h := HandlerFunc(func(reqs []Request) []Response {
		out := make([]Response, len(reqs))
		for i := range out {
			out[i] = Response{Err: "budget spent mid-batch", Code: CodeDeadlineExceeded}
		}
		return out
	})
	s, err := Serve("127.0.0.1:0", h, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.CallOne(Request{Type: Get, ID: 1})
	if err == nil {
		t.Fatal("failed response did not surface as an error")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("worker-typed deadline reply = %v, want errors.Is(err, ErrDeadlineExceeded)", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("typed reply must also match context.DeadlineExceeded, got %v", err)
	}
	if !strings.Contains(err.Error(), "budget spent mid-batch") {
		t.Fatalf("worker's message lost from %v", err)
	}
	// A typed reply is an application verdict, not a transport failure:
	// the connection stays usable.
	if c.Broken() {
		t.Fatal("typed deadline reply broke the transport")
	}
}

// TestPipelineDepth8Latency is the acceptance measurement as a test: at an
// emulated 35 ms RTT, a depth-8 burst of small calls must complete in a
// couple of round trips when pipelined (they share bursts on one
// connection) and must beat the same burst on a lock-step client by at
// least 2x (which pays ~1 RTT per call).
func TestPipelineDepth8Latency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive WAN emulation")
	}
	const rtt = 35 * time.Millisecond
	const depth = 8
	wan := netem.Config{RTT: rtt}
	// Shape both directions (netem charges RTT/2 per write burst): requests
	// on the client conn, replies on the server conn — as on a real WAN.
	s, _ := startServer(t, Options{Netem: wan})

	run := func(window int) time.Duration {
		c, err := Dial(s.Addr(), Options{Netem: wan, Window: window, Metrics: obs.New()})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Seed the objects and resolve the probe in one batched call, then
		// let the netem burst gap elapse so measurement starts clean.
		reqs := make([]Request, depth)
		for i := range reqs {
			reqs[i] = Request{Type: Put, ID: int64(i + 1), Data: ScalarPayload(float64(i))}
		}
		if _, err := c.Call(reqs...); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)

		start := time.Now()
		var wg sync.WaitGroup
		var fail atomic.Value
		for i := 0; i < depth; i++ {
			wg.Add(1)
			go func(id int64) {
				defer wg.Done()
				if _, err := c.CallOne(Request{Type: Get, ID: id}); err != nil {
					fail.Store(err)
				}
			}(int64(i + 1))
		}
		wg.Wait()
		if err := fail.Load(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	pipelined := run(depth)
	lockstep := run(1)
	t.Logf("depth-%d burst at RTT %v: pipelined %v, lock-step %v", depth, rtt, pipelined, lockstep)
	if limit := 7 * rtt / 2; pipelined >= limit {
		t.Fatalf("pipelined depth-%d burst took %v, want < %v (~3.5 RTTs)", depth, pipelined, limit)
	}
	if pipelined >= lockstep/2 {
		t.Fatalf("pipelined %v not at least 2x faster than lock-step %v", pipelined, lockstep)
	}
}

// TestPoolReclaimDoesNotCountCheckout is the regression test for the
// accounting bug where the cancelled-waiter reclaim path counted a
// checkout for a client the caller never received: reclaim must rebalance
// the lease without touching serve.pool.checkouts.
func TestPoolReclaimDoesNotCountCheckout(t *testing.T) {
	reg := obs.New()
	s, _ := startServer(t, Options{})
	p := NewPool(s.Addr(), 1, Options{Metrics: reg})
	defer p.Close()
	cl, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce the race deterministically: a Put handed cl to a waiter
	// whose ctx died before it could receive. The lease rode along on the
	// channel; reclaim returns it to the pool.
	w := make(chan *Client, 1)
	w <- cl
	p.reclaim(w)
	if got := reg.Counter("serve.pool.checkouts").Value(); got != 1 {
		t.Fatalf("checkouts = %d after reclaim, want 1 (only the real Get)", got)
	}
	st := p.Stats()
	if st.InUse != 0 || st.Idle != 1 {
		t.Fatalf("pool after reclaim = %+v, want the client idle again", st)
	}
	if got := reg.Gauge("serve.pool.in_use").Value(); got != 0 {
		t.Fatalf("in_use gauge = %d after reclaim, want 0", got)
	}
}

// TestPoolCancelStormCheckoutAccounting hammers Get with expiring contexts
// against a size-1 pool: whatever interleaving of handoffs and
// cancellations occurs, serve.pool.checkouts must equal the number of Gets
// that actually returned a client, and the pool must quiesce balanced.
func TestPoolCancelStormCheckoutAccounting(t *testing.T) {
	reg := obs.New()
	s, _ := startServer(t, Options{})
	p := NewPool(s.Addr(), 1, Options{Metrics: reg})
	defer p.Close()
	var succ atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%7)*time.Millisecond)
			defer cancel()
			cl, err := p.Get(ctx)
			if err != nil {
				return
			}
			succ.Add(1)
			time.Sleep(500 * time.Microsecond) // hold the lease so waiters pile up
			p.Put(cl)
		}(i)
	}
	wg.Wait()
	if got := reg.Counter("serve.pool.checkouts").Value(); got != succ.Load() {
		t.Fatalf("checkouts = %d, successful Gets = %d: reclaim or handoff miscounted", got, succ.Load())
	}
	st := p.Stats()
	if st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("pool did not quiesce: %+v", st)
	}
	if got := reg.Gauge("serve.pool.in_use").Value(); got != 0 {
		t.Fatalf("in_use gauge = %d after storm, want 0", got)
	}
}

// TestPoolMultiplexesPipelinedConnection: once a pooled client has proven
// its peer pipelines, additional checkouts lease the same connection (up
// to its window) instead of waiting — a size-1 pool serves three
// concurrent checkouts over one transport.
func TestPoolMultiplexesPipelinedConnection(t *testing.T) {
	s, _ := startServer(t, Options{})
	p := NewPool(s.Addr(), 1, Options{Metrics: obs.New(), Window: 4})
	defer p.Close()
	ctx := context.Background()
	cl, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	warm(t, cl) // prove tag support so WindowCap opens to 4
	p.Put(cl)

	c1, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get(ctx) // would block forever on a non-multiplexing size-1 pool
	if err != nil {
		t.Fatal(err)
	}
	c3, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != cl || c2 != cl || c3 != cl {
		t.Fatal("multiplexed checkouts did not share the one pooled connection")
	}
	st := p.Stats()
	if st.Conns != 1 || st.InUse != 3 || st.Idle != 0 {
		t.Fatalf("stats with three leases on one conn = %+v", st)
	}
	// The leases are real: all three can run exchanges.
	var wg sync.WaitGroup
	var fail atomic.Value
	for _, c := range []*Client{c1, c2, c3} {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if _, err := c.Call(Request{Type: Clear}); err != nil {
				fail.Store(err)
			}
		}(c)
	}
	wg.Wait()
	if err := fail.Load(); err != nil {
		t.Fatalf("multiplexed exchange failed: %v", err)
	}
	p.Put(c1)
	p.Put(c2)
	p.Put(c3)
	st = p.Stats()
	if st.Conns != 1 || st.InUse != 0 || st.Idle != 1 {
		t.Fatalf("stats after returning all leases = %+v", st)
	}
}
