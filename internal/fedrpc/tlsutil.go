package fedrpc

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// NewSelfSignedTLS generates an ephemeral self-signed certificate for
// loopback deployments and returns matching server and client TLS configs
// (the client trusts exactly this certificate). It stands in for the
// operationally provisioned certificates of a production federation.
func NewSelfSignedTLS() (server, client *tls.Config, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("fedrpc: generate key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "exdra-federated-worker"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		DNSNames:              []string{"localhost"},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, fmt.Errorf("fedrpc: create certificate: %w", err)
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	parsed, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(parsed)
	server = &tls.Config{Certificates: []tls.Certificate{cert}}
	client = &tls.Config{RootCAs: pool, ServerName: "localhost"}
	return server, client, nil
}
