package fedrpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/obs"
)

// fieldNames lists a struct type's field names in declaration order.
func fieldNames(t reflect.Type) []string {
	names := make([]string, t.NumField())
	for i := range names {
		names[i] = t.Field(i).Name
	}
	return names
}

// TestWireRequestFieldParity pins the wire structs to their protocol
// counterparts: anyone adding a field to Request/Response/Payload must
// thread it through the binary framing too, or silently lose it on the
// wire. The envelope types mirror the protocol types field-for-field with
// two deliberate exceptions — slab contents become lengths, and the
// per-response Epoch is hoisted into the reply envelope.
func TestWireRequestFieldParity(t *testing.T) {
	if got, want := fieldNames(reflect.TypeOf(wireRequest{})), fieldNames(reflect.TypeOf(Request{})); !reflect.DeepEqual(got, want) {
		t.Errorf("wireRequest fields %v do not mirror Request fields %v", got, want)
	}

	want := fieldNames(reflect.TypeOf(Response{}))
	// Epoch travels once per batch in wireReply.Epoch, not per response.
	trimmed := want[:0:0]
	for _, n := range want {
		if n != "Epoch" {
			trimmed = append(trimmed, n)
		}
	}
	if got := fieldNames(reflect.TypeOf(wireResponse{})); !reflect.DeepEqual(got, trimmed) {
		t.Errorf("wireResponse fields %v do not mirror Response-minus-Epoch %v", got, trimmed)
	}
	if _, ok := reflect.TypeOf(wireReply{}).FieldByName("Epoch"); !ok {
		t.Error("wireReply lost its hoisted Epoch field")
	}

	// Payload's slab fields become length descriptors; everything else must
	// carry over by name. The CRC fields are wire-only metadata (each slab's
	// checksum) with no Payload counterpart.
	slabbed := map[string]string{"Values": "NVals", "Bytes": "NBytes"}
	wireOnly := map[string]bool{"ValsCRC": true, "BytesCRC": true}
	pt, wt := reflect.TypeOf(Payload{}), reflect.TypeOf(wirePayload{})
	for i := 0; i < pt.NumField(); i++ {
		name := pt.Field(i).Name
		if repl, ok := slabbed[name]; ok {
			name = repl
		}
		if _, ok := wt.FieldByName(name); !ok {
			t.Errorf("wirePayload is missing a counterpart for Payload.%s (want field %q)", pt.Field(i).Name, name)
		}
	}
	if pt.NumField()+len(wireOnly) != wt.NumField() {
		t.Errorf("wirePayload has %d fields for Payload's %d (+%d wire-only)", wt.NumField(), pt.NumField(), len(wireOnly))
	}
	for name := range wireOnly {
		if _, ok := wt.FieldByName(name); !ok {
			t.Errorf("wirePayload is missing wire-only field %q", name)
		}
	}
}

// TestFloatSlabGoldenBytes pins the slab encoding to raw little-endian
// IEEE-754 — byte-for-byte, on both the zero-copy and the portable
// conversion path — and round-trips NaN and the infinities bit-exactly.
func TestFloatSlabGoldenBytes(t *testing.T) {
	vals := []float64{0, 1, -2.5, math.Pi, math.NaN(), math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64}
	golden := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(golden[i*8:], math.Float64bits(v))
	}

	writers := map[string]func(*bytes.Buffer) error{
		"native":   func(b *bytes.Buffer) error { return writeFloatSlab(b, vals) },
		"portable": func(b *bytes.Buffer) error { return writeFloatSlabPortable(b, vals) },
	}
	for name, write := range writers {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Fatalf("%s slab bytes:\n got % x\nwant % x", name, buf.Bytes(), golden)
		}
	}

	readers := map[string]func(*bytes.Reader, []float64) error{
		"native":   func(r *bytes.Reader, f []float64) error { return readFloatSlab(r, f) },
		"portable": func(r *bytes.Reader, f []float64) error { return readFloatSlabPortable(r, f) },
	}
	for name, read := range readers {
		got := make([]float64, len(vals))
		if err := read(bytes.NewReader(golden), got); err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("%s read[%d] = %v (bits %x), want %v", name, i, got[i], math.Float64bits(got[i]), vals[i])
			}
		}
	}
}

// TestFloatSlabPortableChunking pushes a slab past the pooled 64 KiB
// staging buffer so the portable path's chunk loop is exercised.
func TestFloatSlabPortableChunking(t *testing.T) {
	vals := make([]float64, 3*slabChunk/8+5) // ~3.6 chunks
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	var buf bytes.Buffer
	if err := writeFloatSlabPortable(&buf, vals); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(vals)*8 {
		t.Fatalf("portable write emitted %d bytes, want %d", buf.Len(), len(vals)*8)
	}
	got := make([]float64, len(vals))
	if err := readFloatSlabPortable(bytes.NewReader(buf.Bytes()), got); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("chunked round trip diverged at %d: %v != %v", i, got[i], vals[i])
		}
	}
}

// payloadEqual compares payloads treating NaN as equal to itself (bitwise
// float comparison) and distinguishing nil from empty slices.
func payloadEqual(a, b Payload) bool {
	if a.Kind != b.Kind || a.Rows != b.Rows || a.Cols != b.Cols ||
		math.Float64bits(a.Scalar) != math.Float64bits(b.Scalar) {
		return false
	}
	if (a.Values == nil) != (b.Values == nil) || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			return false
		}
	}
	if (a.Bytes == nil) != (b.Bytes == nil) || !bytes.Equal(a.Bytes, b.Bytes) {
		return false
	}
	return reflect.DeepEqual(a.Frame, b.Frame)
}

// wirePayloadCases covers every PayloadKind plus the slab edge shapes:
// nil vs present-but-empty, single element, multi-chunk large, and the
// non-finite values raw IEEE framing must preserve.
func wirePayloadCases() map[string]Payload {
	big := matrix.Rand(rand.New(rand.NewSource(7)), 123, 57, -1, 1)
	bigVals := big.Data()
	bigVals[0] = math.NaN()
	bigVals[1] = math.Inf(1)
	bigVals[len(bigVals)-1] = math.Inf(-1)
	f := frame.MustNew(
		frame.StringColumn("name", []string{"a", "", "c"}),
		frame.FloatColumn("v", []float64{1, 2, 3}),
	)
	return map[string]Payload{
		"none":         {},
		"matrix-1x1":   MatrixPayload(matrix.FromRows([][]float64{{42.5}})),
		"matrix-empty": {Kind: PayloadMatrix, Rows: 0, Cols: 0, Values: []float64{}},
		"matrix-large": MatrixPayload(big),
		"scalar":       ScalarPayload(-0.125),
		"bytes":        BytesPayload([]byte{0x00, 0xff, 'X', 'D', 'R'}),
		"bytes-empty":  BytesPayload([]byte{}),
		"frame":        FramePayload(f),
	}
}

// TestWireBatchRoundTrip frames request batches through an in-memory
// stream for every payload kind and checks bit-exact reconstruction —
// including a multi-request batch that interleaves several slabs behind
// one envelope.
func TestWireBatchRoundTrip(t *testing.T) {
	cases := wirePayloadCases()
	var batch []Request
	var id int64
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			req := Request{Type: Put, ID: 9, Filename: name, Privacy: 2,
				ColPrivacy: []int{0, 1}, Data: p,
				Inst: &Instruction{Opcode: "mm", Inputs: []int64{1, 2}, Output: 3, Scalars: []float64{0.5}}}
			var buf bytes.Buffer
			if err := writeBatch(gob.NewEncoder(&buf), &buf, []Request{req}, 0, 0); err != nil {
				t.Fatal(err)
			}
			got, _, _, err := readBatch(gob.NewDecoder(&buf), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 {
				t.Fatalf("decoded %d requests, want 1", len(got))
			}
			g := got[0]
			if g.Type != req.Type || g.ID != req.ID || g.Filename != req.Filename ||
				g.Privacy != req.Privacy || !reflect.DeepEqual(g.ColPrivacy, req.ColPrivacy) ||
				!reflect.DeepEqual(g.Inst, req.Inst) {
				t.Fatalf("envelope fields diverged:\n got %+v\nwant %+v", g, req)
			}
			if !payloadEqual(g.Data, req.Data) {
				t.Fatalf("payload diverged:\n got %+v\nwant %+v", g.Data, req.Data)
			}
		})
		id++
		batch = append(batch, Request{Type: Put, ID: id, Data: p})
	}

	var buf bytes.Buffer
	if err := writeBatch(gob.NewEncoder(&buf), &buf, batch, 0, 31); err != nil {
		t.Fatal(err)
	}
	got, _, tag, err := readBatch(gob.NewDecoder(&buf), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(batch))
	}
	if tag != 31 {
		t.Fatalf("decoded call tag %d, want 31", tag)
	}
	for i := range batch {
		if !payloadEqual(got[i].Data, batch[i].Data) {
			t.Fatalf("batched slab %d misaligned:\n got %+v\nwant %+v", i, got[i].Data, batch[i].Data)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d unread bytes after batch decode", buf.Len())
	}
}

// TestWireReplyRoundTrip checks the response direction, including the
// epoch hoist: the envelope carries the worker epoch once, and decoding
// stamps it back onto every response.
func TestWireReplyRoundTrip(t *testing.T) {
	cases := wirePayloadCases()
	resps := []Response{
		{OK: true, Data: cases["matrix-large"], Epoch: 0xfeed},
		{OK: false, Err: "no object 4", Epoch: 0xfeed},
		{OK: true, Data: cases["bytes"], Epoch: 0xfeed},
	}
	var buf bytes.Buffer
	if err := writeReply(gob.NewEncoder(&buf), &buf, resps, 12345, 77); err != nil {
		t.Fatal(err)
	}
	rep, err := readReply(gob.NewDecoder(&buf), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecNanos != 12345 {
		t.Fatalf("ExecNanos = %d, want 12345", rep.ExecNanos)
	}
	if rep.Tag != 77 {
		t.Fatalf("Tag = %d, want the echoed call tag 77", rep.Tag)
	}
	if len(rep.Responses) != len(resps) {
		t.Fatalf("decoded %d responses, want %d", len(rep.Responses), len(resps))
	}
	for i, r := range rep.Responses {
		if r.Epoch != 0xfeed {
			t.Fatalf("response %d epoch = %#x, want the hoisted batch epoch 0xfeed", i, r.Epoch)
		}
		if r.OK != resps[i].OK || r.Err != resps[i].Err || !payloadEqual(r.Data, resps[i].Data) {
			t.Fatalf("response %d diverged:\n got %+v\nwant %+v", i, r, resps[i])
		}
	}
}

// TestReadPayloadRejectsCorruptLengths forges slab descriptors a hostile
// or corrupted envelope could carry; readPayload must reject them before
// allocating.
func TestReadPayloadRejectsCorruptLengths(t *testing.T) {
	cases := map[string]wirePayload{
		"negative-nvals":  {Kind: PayloadMatrix, NVals: -7},
		"negative-nbytes": {Kind: PayloadBytes, NVals: -1, NBytes: -2},
		"huge-nvals":      {Kind: PayloadMatrix, Rows: 1 << 16, Cols: 1 << 16, NVals: 1 << 32},
		"huge-nbytes":     {Kind: PayloadBytes, NVals: -1, NBytes: 1 << 35},
		"shape-mismatch":  {Kind: PayloadMatrix, Rows: 3, Cols: 3, NVals: 8},
	}
	for name, wp := range cases {
		if _, err := readPayload(bytes.NewReader(nil), wp, false); err == nil {
			t.Errorf("%s: readPayload accepted forged descriptor %+v", name, wp)
		}
	}
}

// TestNegotiationFallbackToGobServer dials a gob-only server (a stand-in
// for a pre-framing build) with a binary-capable client: the handshake
// must fail closed, the client must redial in the legacy format, record
// exactly one fallback, and keep the gob hint sticky across later redials.
func TestNegotiationFallbackToGobServer(t *testing.T) {
	s, _ := startServer(t, Options{ForceGob: true})
	reg := obs.New()
	c, err := Dial(s.Addr(), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.WireBinary() {
		t.Fatal("client claims binary framing against a gob-only server")
	}

	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: MatrixPayload(m)}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.CallOne(Request{Type: Get, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Data.Matrix().EqualApprox(m, 0) {
		t.Fatal("matrix round trip over the fallback transport")
	}

	if n := reg.Counter("rpc.client.gob_fallbacks").Value(); n != 1 {
		t.Fatalf("gob_fallbacks = %d after first dial, want 1", n)
	}
	if err := c.Redial(); err != nil {
		t.Fatal(err)
	}
	if c.WireBinary() {
		t.Fatal("redial forgot the sticky gob hint")
	}
	if n := reg.Counter("rpc.client.gob_fallbacks").Value(); n != 1 {
		t.Fatalf("gob_fallbacks = %d after redial, want still 1 (hint should skip the handshake)", n)
	}
	if _, err := c.CallOne(Request{Type: Get, ID: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestNegotiationBinaryByDefault pins the happy path: two current peers
// negotiate the binary format without any configuration.
func TestNegotiationBinaryByDefault(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.WireBinary() {
		t.Fatal("two current peers should negotiate binary framing")
	}
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: ScalarPayload(7)}); err != nil {
		t.Fatal(err)
	}
}

// TestGobClientAgainstBinaryServer covers the other compatibility
// direction: a ForceGob client (a stand-in for an old coordinator) against
// a current server, which must sniff the absent prelude and serve gob.
func TestGobClientAgainstBinaryServer(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{ForceGob: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.WireBinary() {
		t.Fatal("ForceGob client reports binary framing")
	}
	m := matrix.FromRows([][]float64{{5, 6, 7}})
	if _, err := c.CallOne(Request{Type: Put, ID: 2, Data: MatrixPayload(m)}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.CallOne(Request{Type: Get, ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Data.Matrix().EqualApprox(m, 0) {
		t.Fatal("matrix round trip from a gob client to a binary-capable server")
	}
}
