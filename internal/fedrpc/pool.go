package fedrpc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"exdra/internal/obs"
)

// ErrPoolClosed marks checkouts from a pool after Close. Like ErrClosed on
// a single client, a closed pool stays closed for good.
var ErrPoolClosed = errors.New("fedrpc: pool closed")

// Pool is a bounded set of clients to one worker address with
// checkout/checkin semantics. It exists so a multi-session coordinator
// service stops serializing independent sessions behind one client's
// exchange lock: each checkout owns a whole connection for the duration of
// its exchange, up to Size concurrent exchanges per worker.
//
// Connections are dialed lazily, one per checkout demand, never more than
// Size; a checkout beyond that waits (FIFO) for a checkin, giving natural
// backpressure that pairs with the service's admission control. Broken
// clients are handed out as-is — fedrpc.Client transparently redials on its
// next Call, so the pool needs no health bookkeeping of its own.
//
// Metrics: the pool reports into the serve.pool.* series (the coordinator
// service's namespace — pools are its substrate even when used standalone):
// serve.pool.dials / serve.pool.checkouts / serve.pool.waits counters and
// the serve.pool.in_use gauge.
type Pool struct {
	addr string
	opts Options
	size int
	reg  *obs.Registry

	mu      sync.Mutex
	idle    []*Client      // checked-in clients; guarded by mu
	all     []*Client      // every client ever dialed (byte counters); guarded by mu
	slots   int            // checked-out plus mid-dial connection slots; guarded by mu
	out     int            // checked-out clients; guarded by mu
	waiters []chan *Client // FIFO checkout queue; guarded by mu
	closed  bool           // guarded by mu
}

// NewPool creates a pool of up to size clients for addr. Size below 1 is
// clamped to 1 (the legacy one-client-per-address shape).
func NewPool(addr string, size int, opts Options) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{addr: addr, opts: opts, size: size, reg: opts.metrics()}
}

// Addr returns the worker address this pool connects to.
func (p *Pool) Addr() string { return p.addr }

// Size returns the connection bound.
func (p *Pool) Size() int { return p.size }

// Get checks a client out of the pool: an idle one if available, a freshly
// dialed one while fewer than Size exist, otherwise it waits until a
// checkin (FIFO) or ctx dies. The caller must return the client with Put
// when its exchange completes — broken or not.
func (p *Pool) Get(ctx context.Context) (*Client, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("fedrpc: pool %s: %w", p.addr, ErrPoolClosed)
		}
		if n := len(p.idle); n > 0 {
			cl := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.slots++
			p.out++
			p.mu.Unlock()
			p.reg.Counter("serve.pool.checkouts").Inc()
			p.reg.Gauge("serve.pool.in_use").Add(1)
			return cl, nil
		}
		if p.slots < p.size {
			p.slots++ // reserve the connection slot across the dial
			p.mu.Unlock()
			return p.dialSlot()
		}
		// Every connection is out: queue for the next checkin.
		w := make(chan *Client, 1)
		p.waiters = append(p.waiters, w)
		p.mu.Unlock()
		p.reg.Counter("serve.pool.waits").Inc()
		select {
		case cl := <-w:
			if cl == nil {
				continue // a slot freed without a client (failed dial, or Close)
			}
			// Direct handoff from Put: the slot and in_use accounting
			// transferred with the client.
			p.reg.Counter("serve.pool.checkouts").Inc()
			return cl, nil
		case <-ctx.Done():
			p.mu.Lock()
			removed := p.removeWaiterLocked(w)
			p.mu.Unlock()
			if !removed {
				// A handoff raced the cancellation; reclaim it for others.
				select {
				case cl := <-w:
					if cl != nil {
						p.reg.Counter("serve.pool.checkouts").Inc()
						p.Put(cl)
					}
				default:
				}
			}
			return nil, fmt.Errorf("fedrpc: pool %s checkout: %w", p.addr, ctx.Err())
		}
	}
}

// dialSlot fills a reserved connection slot with a fresh client. On failure
// the slot is released and one waiter is woken so it can claim it.
func (p *Pool) dialSlot() (*Client, error) {
	cl, err := Dial(p.addr, p.opts)
	p.mu.Lock()
	if err != nil {
		p.slots--
		w := p.popWaiterLocked()
		p.mu.Unlock()
		if w != nil {
			w <- nil // wake to retry against the freed slot
		}
		return nil, err
	}
	if p.closed {
		p.slots--
		p.mu.Unlock()
		cl.Close()
		return nil, fmt.Errorf("fedrpc: pool %s: %w", p.addr, ErrPoolClosed)
	}
	p.all = append(p.all, cl)
	p.out++
	p.mu.Unlock()
	p.reg.Counter("serve.pool.dials").Inc()
	p.reg.Counter("serve.pool.checkouts").Inc()
	p.reg.Gauge("serve.pool.in_use").Add(1)
	return cl, nil
}

// Put checks a client back in. If a waiter is queued the client is handed
// straight over (its connection slot transfers with it); otherwise it goes
// idle. Putting a broken client back is fine — its next user redials.
func (p *Pool) Put(cl *Client) {
	if cl == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return // Close already closed every client, including this one
	}
	w := p.popWaiterLocked()
	if w == nil {
		p.slots--
		p.out--
		p.idle = append(p.idle, cl)
	}
	p.mu.Unlock()
	if w != nil {
		w <- cl
		return
	}
	p.reg.Gauge("serve.pool.in_use").Add(-1)
}

// Shared returns a client without checking it out: the pool's first live
// connection, dialing one if none exists yet. The returned client may be
// used concurrently by checkout holders — fedrpc.Client serializes its own
// exchanges — so Shared is for legacy one-client-per-address callers and
// best-effort cleanup sweeps, not for latency-sensitive traffic.
func (p *Pool) Shared(ctx context.Context) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("fedrpc: pool %s: %w", p.addr, ErrPoolClosed)
	}
	if len(p.all) > 0 {
		cl := p.all[0]
		p.mu.Unlock()
		return cl, nil
	}
	p.mu.Unlock()
	cl, err := p.Get(ctx)
	if err != nil {
		return nil, err
	}
	p.Put(cl)
	return cl, nil
}

// popWaiterLocked dequeues the oldest waiter, or nil. Callers hold p.mu and
// must send on the channel only after releasing it.
func (p *Pool) popWaiterLocked() chan *Client {
	if len(p.waiters) == 0 {
		return nil
	}
	w := p.waiters[0]
	p.waiters = p.waiters[1:]
	return w
}

// removeWaiterLocked drops w from the queue, reporting whether it was still
// queued (false means a handoff already claimed it). Callers hold p.mu.
func (p *Pool) removeWaiterLocked(w chan *Client) bool {
	for i, q := range p.waiters {
		if q == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// PoolStats is a point-in-time view of a pool's connection accounting.
type PoolStats struct {
	// Conns is the number of live dialed connections.
	Conns int
	// Idle is the number of checked-in clients ready for checkout.
	Idle int
	// InUse is the number of checked-out clients.
	InUse int
	// Waiting is the number of checkouts queued behind a full pool.
	Waiting int
}

// Stats returns the pool's current connection accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Conns: len(p.all), Idle: len(p.idle), InUse: p.out, Waiting: len(p.waiters)}
}

// BytesSent returns the total bytes written across all pooled connections,
// including retired transports (client counters survive redials).
func (p *Pool) BytesSent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, cl := range p.all {
		n += cl.BytesSent()
	}
	return n
}

// BytesReceived returns the total bytes read across all pooled connections.
func (p *Pool) BytesReceived() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, cl := range p.all {
		n += cl.BytesReceived()
	}
	return n
}

// Close closes every pooled client — checked out or idle; Client.Close is
// prompt and interrupts in-flight exchanges — and fails all queued
// checkouts with ErrPoolClosed. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	all := p.all
	ws := p.waiters
	out := p.out
	p.all, p.idle, p.waiters = nil, nil, nil
	p.slots, p.out = 0, 0
	p.mu.Unlock()
	for _, w := range ws {
		close(w) // receivers observe nil, loop, and see the closed pool
	}
	for _, cl := range all {
		cl.Close()
	}
	if out > 0 {
		p.reg.Gauge("serve.pool.in_use").Add(-int64(out))
	}
}
