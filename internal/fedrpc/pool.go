package fedrpc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"exdra/internal/obs"
)

// ErrPoolClosed marks checkouts from a pool after Close. Like ErrClosed on
// a single client, a closed pool stays closed for good.
var ErrPoolClosed = errors.New("fedrpc: pool closed")

// Pool is a bounded set of clients to one worker address with
// checkout/checkin semantics. It exists so a multi-session coordinator
// service stops serializing independent sessions behind one client's
// exchange lock: each checkout leases a connection for the duration of its
// exchange, up to Size connections per worker.
//
// Connections are dialed lazily and never beyond Size, but a connection is
// not exclusively owned: once a client has proven its peer pipelines (see
// Client.WindowCap), up to W checkouts multiplex onto it — their tagged
// exchanges interleave on the wire — before the pool dials another
// connection. A checkout beyond Size×W waits (FIFO) for a checkin, giving
// natural backpressure that pairs with the service's admission control.
// Broken clients are handed out as-is — fedrpc.Client transparently redials
// on its next Call, so the pool needs no health bookkeeping of its own.
//
// Metrics: the pool reports into the serve.pool.* series (the coordinator
// service's namespace — pools are its substrate even when used standalone):
// serve.pool.dials / serve.pool.checkouts / serve.pool.waits counters and
// the serve.pool.in_use gauge (leases, not connections).
type Pool struct {
	addr string
	opts Options
	size int
	reg  *obs.Registry

	mu      sync.Mutex
	idle    []*Client       // zero-lease clients ready for checkout; guarded by mu
	all     []*Client       // every client ever dialed (byte counters); guarded by mu
	leases  map[*Client]int // live checkouts per client; guarded by mu
	dialing int             // connection slots reserved across a dial; guarded by mu
	out     int             // total live leases; guarded by mu
	waiters []chan *Client  // FIFO checkout queue; guarded by mu
	closed  bool            // guarded by mu
}

// NewPool creates a pool of up to size clients for addr. Size below 1 is
// clamped to 1 (the legacy one-client-per-address shape).
func NewPool(addr string, size int, opts Options) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{addr: addr, opts: opts, size: size, reg: opts.metrics(), leases: map[*Client]int{}}
}

// Addr returns the worker address this pool connects to.
func (p *Pool) Addr() string { return p.addr }

// Size returns the connection bound.
func (p *Pool) Size() int { return p.size }

// Get checks a client out of the pool: an idle one if available, a lease
// multiplexed onto a live pipelining connection with window headroom, a
// freshly dialed one while fewer than Size exist, otherwise it waits until
// a checkin (FIFO) or ctx dies. The caller must return the client with Put
// when its exchange completes — broken or not.
func (p *Pool) Get(ctx context.Context) (*Client, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("fedrpc: pool %s: %w", p.addr, ErrPoolClosed)
		}
		if n := len(p.idle); n > 0 {
			cl := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.leases[cl]++
			p.out++
			p.mu.Unlock()
			p.reg.Counter("serve.pool.checkouts").Inc()
			p.reg.Gauge("serve.pool.in_use").Add(1)
			return cl, nil
		}
		if cl := p.leastLoadedLocked(); cl != nil {
			// Multiplex: the connection already carries exchanges, but its
			// pipelining window has headroom — cheaper than a fresh dial.
			p.leases[cl]++
			p.out++
			p.mu.Unlock()
			p.reg.Counter("serve.pool.checkouts").Inc()
			p.reg.Gauge("serve.pool.in_use").Add(1)
			return cl, nil
		}
		if len(p.all)+p.dialing < p.size {
			p.dialing++ // reserve the connection slot across the dial
			p.mu.Unlock()
			return p.dialSlot()
		}
		// Every connection is leased to capacity: queue for a checkin.
		w := make(chan *Client, 1)
		p.waiters = append(p.waiters, w)
		p.mu.Unlock()
		p.reg.Counter("serve.pool.waits").Inc()
		select {
		case cl := <-w:
			if cl == nil {
				continue // a slot freed without a client (failed dial, or Close)
			}
			// Direct handoff from Put: the lease and in_use accounting
			// transferred with the client.
			p.reg.Counter("serve.pool.checkouts").Inc()
			return cl, nil
		case <-ctx.Done():
			p.mu.Lock()
			removed := p.removeWaiterLocked(w)
			p.mu.Unlock()
			if !removed {
				p.reclaim(w)
			}
			return nil, fmt.Errorf("fedrpc: pool %s checkout: %w", p.addr, ctx.Err())
		}
	}
}

// reclaim returns a handoff that raced the waiter's cancellation to the
// pool. The cancelled waiter never used the client, so this is not a
// checkout: no serve.pool.checkouts increment — Put alone rebalances the
// lease the handoff carried over.
func (p *Pool) reclaim(w chan *Client) {
	select {
	case cl := <-w:
		if cl != nil {
			p.Put(cl)
		}
	default:
	}
}

// leastLoadedLocked picks the live client with the most pipelining-window
// headroom (fewest leases below its WindowCap), or nil when none has room.
// Callers hold p.mu.
func (p *Pool) leastLoadedLocked() *Client {
	var best *Client
	spare := 0
	for _, cl := range p.all {
		n := p.leases[cl]
		if n <= 0 {
			continue // idle clients are claimed through p.idle
		}
		if s := cl.WindowCap() - n; s > spare {
			best, spare = cl, s
		}
	}
	return best
}

// dialSlot fills a reserved connection slot with a fresh client. On failure
// the slot is released and one waiter is woken so it can claim it.
func (p *Pool) dialSlot() (*Client, error) {
	cl, err := Dial(p.addr, p.opts)
	p.mu.Lock()
	p.dialing--
	if err != nil {
		w := p.popWaiterLocked()
		p.mu.Unlock()
		if w != nil {
			w <- nil // wake to retry against the freed slot
		}
		return nil, err
	}
	if p.closed {
		p.mu.Unlock()
		cl.Close()
		return nil, fmt.Errorf("fedrpc: pool %s: %w", p.addr, ErrPoolClosed)
	}
	p.all = append(p.all, cl)
	p.leases[cl] = 1
	p.out++
	p.mu.Unlock()
	p.reg.Counter("serve.pool.dials").Inc()
	p.reg.Counter("serve.pool.checkouts").Inc()
	p.reg.Gauge("serve.pool.in_use").Add(1)
	return cl, nil
}

// Put checks a lease back in. If a waiter is queued the client is handed
// straight over (the lease transfers with it); otherwise the lease is
// released, and a client whose last lease drops goes idle. Putting a broken
// client back is fine — its next user redials.
func (p *Pool) Put(cl *Client) {
	if cl == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return // Close already closed every client, including this one
	}
	w := p.popWaiterLocked()
	if w == nil {
		p.leases[cl]--
		p.out--
		if p.leases[cl] <= 0 {
			delete(p.leases, cl)
			p.idle = append(p.idle, cl)
		}
	}
	p.mu.Unlock()
	if w != nil {
		w <- cl
		return
	}
	p.reg.Gauge("serve.pool.in_use").Add(-1)
}

// Shared returns a client without checking it out: the pool's first live
// connection, dialing one if none exists yet. The returned client may be
// used concurrently by checkout holders — fedrpc.Client serializes (or
// pipelines) its own exchanges — so Shared is for legacy
// one-client-per-address callers and best-effort cleanup sweeps, not for
// latency-sensitive traffic.
func (p *Pool) Shared(ctx context.Context) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("fedrpc: pool %s: %w", p.addr, ErrPoolClosed)
	}
	if len(p.all) > 0 {
		cl := p.all[0]
		p.mu.Unlock()
		return cl, nil
	}
	p.mu.Unlock()
	cl, err := p.Get(ctx)
	if err != nil {
		return nil, err
	}
	p.Put(cl)
	return cl, nil
}

// popWaiterLocked dequeues the oldest waiter, or nil. Callers hold p.mu and
// must send on the channel only after releasing it.
func (p *Pool) popWaiterLocked() chan *Client {
	if len(p.waiters) == 0 {
		return nil
	}
	w := p.waiters[0]
	p.waiters = p.waiters[1:]
	return w
}

// removeWaiterLocked drops w from the queue, reporting whether it was still
// queued (false means a handoff already claimed it). Callers hold p.mu.
func (p *Pool) removeWaiterLocked(w chan *Client) bool {
	for i, q := range p.waiters {
		if q == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// PoolStats is a point-in-time view of a pool's connection accounting.
type PoolStats struct {
	// Conns is the number of live dialed connections.
	Conns int
	// Idle is the number of checked-in clients ready for checkout.
	Idle int
	// InUse is the number of live checkout leases (with pipelining, several
	// can share one connection).
	InUse int
	// Waiting is the number of checkouts queued behind a full pool.
	Waiting int
}

// Stats returns the pool's current connection accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Conns: len(p.all), Idle: len(p.idle), InUse: p.out, Waiting: len(p.waiters)}
}

// BytesSent returns the total bytes written across all pooled connections,
// including retired transports (client counters survive redials).
func (p *Pool) BytesSent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, cl := range p.all {
		n += cl.BytesSent()
	}
	return n
}

// BytesReceived returns the total bytes read across all pooled connections.
func (p *Pool) BytesReceived() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, cl := range p.all {
		n += cl.BytesReceived()
	}
	return n
}

// Close closes every pooled client — checked out or idle; Client.Close is
// prompt and interrupts in-flight exchanges — and fails all queued
// checkouts with ErrPoolClosed. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	all := p.all
	ws := p.waiters
	out := p.out
	p.all, p.idle, p.waiters = nil, nil, nil
	p.leases, p.out = map[*Client]int{}, 0
	p.mu.Unlock()
	for _, w := range ws {
		close(w) // receivers observe nil, loop, and see the closed pool
	}
	for _, cl := range all {
		cl.Close()
	}
	if out > 0 {
		p.reg.Gauge("serve.pool.in_use").Add(-int64(out))
	}
}
