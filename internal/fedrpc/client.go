package fedrpc

import (
	"bufio"
	"context"
	"crypto/tls"
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/netem"
	"exdra/internal/obs"
)

// ErrClosed marks operations on a client after Close. Unlike a broken
// client — which transparently redials on the next Call — a closed client
// stays closed for good; callers distinguish the two with errors.Is.
var ErrClosed = errors.New("fedrpc: client closed")

// Default liveness bounds. They are backstops against dead peers, not
// pacing mechanisms, so they are generous: the WAN setting of the paper
// (~1.7 MB/s) still moves ~200 MB within the default I/O window.
const (
	DefaultDialTimeout = 10 * time.Second
	DefaultIOTimeout   = 2 * time.Minute
	DefaultIdleTimeout = 10 * time.Minute
)

// Options configure a client or server endpoint.
type Options struct {
	// TLS enables encrypted communication when non-nil (the paper's SSL
	// setting).
	TLS *tls.Config
	// Netem shapes the underlying connection (LAN/WAN emulation).
	Netem netem.Config
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// IOTimeout bounds one full RPC exchange on the client and one reply
	// write on the server. Zero means DefaultIOTimeout; negative disables
	// deadlines (trusted in-process test links).
	IOTimeout time.Duration
	// IdleTimeout bounds how long a server connection may sit between
	// requests (including mid-request stalls) before it is reclaimed.
	// Zero means DefaultIdleTimeout; negative disables it.
	IdleTimeout time.Duration
	// Metrics is the registry RPC counters, histograms, and trace spans
	// report into. Nil uses obs.Default(), so an unconfigured endpoint
	// still shows up on the process /metrics page.
	Metrics *obs.Registry
	// SlowRPC, when positive, flags any exchange whose total duration
	// (queueing included) reaches it: a structured key=value log line is
	// emitted and rpc.client.slow_calls incremented.
	SlowRPC time.Duration
	// ForceGob disables binary wire framing (wire.go) on this endpoint: a
	// client never sends the version prelude, a server never sniffs for
	// it. Both then speak the pure-gob legacy format, exactly like a
	// pre-framing build — used by tests and benchmarks to exercise the
	// fallback path and to measure the old encoding.
	ForceGob bool
	// MaxConns caps concurrently served connections (server side only).
	// Accepts beyond the cap are rejected with backoff: the connection is
	// held briefly and closed without a byte, so a pooling client cannot
	// exhaust a worker's goroutines and a reconnect storm is paced rather
	// than amplified. Zero or negative means unlimited.
	MaxConns int
}

// metrics resolves the configured registry against the process default.
func (o Options) metrics() *obs.Registry {
	if o.Metrics != nil {
		return o.Metrics
	}
	return obs.Default()
}

// timeout resolves a configured duration against its default: zero picks
// the default, negative disables (returns 0).
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// rpcEnvelope is the on-wire unit: one envelope per Call. DeadlineNanos is
// the relative call budget (0 = none); like its binary-framing counterpart
// (wireEnvelope) it rides gob's skip-unknown/zero-missing field semantics,
// so old peers interoperate unchanged in both directions.
type rpcEnvelope struct {
	Requests      []Request
	DeadlineNanos int64
}

// rpcReply carries the batch responses plus the server-side handler wall
// time, which the client uses to split its blocked-on-reply wait into
// Network and Execute span phases. Old peers that omit the field (gob
// tolerates both directions) simply report Execute=0. This is the
// legacy-gob reply shape; binary-framed connections use wireReply
// (wire.go), which readReply converts back into this form.
type rpcReply struct {
	Responses []Response
	ExecNanos int64
}

// Format-hint states: what dialTransport learned about the peer. The hint
// starts unknown, becomes sticky-binary after one successful handshake
// (later handshake failures are then ordinary transport errors, never a
// downgrade), and becomes sticky-gob when an unknown peer slams the
// stream shut on the prelude — the signature of a pre-framing build.
const (
	hintUnknown int32 = iota
	hintBinary
	hintGob
)

// Client is a coordinator-side connection to one federated worker. A client
// is safe for concurrent use; calls are serialized per connection (the
// coordinator parallelizes across workers, as in the paper).
//
// A transport failure (encode, flush, decode, or timeout) leaves the gob
// stream desynchronized, so the client tears the connection down and marks
// itself broken instead of silently reusing the dead stream; the next Call
// (or an explicit Redial) transparently re-establishes the transport. The
// cumulative byte counters survive reconnects.
//
// The exchange path and the transport state are guarded separately so that
// Close never waits behind an in-flight Call: exchange is a capacity-1
// semaphore serializing exchanges (held for the full request/reply I/O —
// a channel rather than a mutex so a caller whose context dies while
// queued can give up without touching the untorn connection), connMu
// guards the transport fields and is never held across I/O or dialing.
// Close takes only connMu, closes the connection — interrupting any
// in-flight exchange — and the interrupted Call observes the closed flag
// and surfaces ErrClosed. Order where both are needed: exchange before
// connMu.
type Client struct {
	addr      string
	opts      Options
	ioTimeout time.Duration
	slowRPC   time.Duration
	reg       *obs.Registry

	// exchange serializes RPC exchanges: send to acquire, receive to
	// release. Time blocked acquiring it is the span's Queue phase.
	exchange chan struct{}

	connMu sync.Mutex
	conn   net.Conn      // nil while broken (pre-redial) or after Close; guarded by connMu
	bw     *bufio.Writer // guarded by connMu
	br     *bufio.Reader // guarded by connMu
	enc    *gob.Encoder  // guarded by connMu
	dec    *gob.Decoder  // guarded by connMu
	binary bool          // this transport negotiated binary framing; guarded by connMu
	closed bool          // Close was called; distinguishes closed from broken; guarded by connMu

	hint     atomic.Int32 // hint* state: survives transport teardown across redials
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	readWait atomic.Int64 // ns blocked in conn reads during the current exchange
}

// Dial connects to a federated worker at addr.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr:      addr,
		opts:      opts,
		ioTimeout: timeout(opts.IOTimeout, DefaultIOTimeout),
		slowRPC:   opts.SlowRPC,
		reg:       opts.metrics(),
		exchange:  make(chan struct{}, 1),
	}
	conn, binary, err := c.dialTransport()
	if err != nil {
		return nil, err
	}
	c.installLocked(conn, binary) // client not yet shared: exclusive access
	return c, nil
}

// dialTransport establishes a shaped (and possibly TLS-wrapped) connection
// and negotiates the wire format on it; the bool reports binary framing.
// It holds no locks, so a slow dial never delays Close or state queries.
//
// Negotiation is a dedicated handshake at connect time — never piggybacked
// on the first request batch — so a fallback redial re-sends five prelude
// bytes, not application requests (an EXEC_UDF resent after an ambiguous
// failure could double-execute). The cost is one extra RTT per connection;
// connections are standing, so the RTT amortizes across the session.
func (c *Client) dialTransport() (net.Conn, bool, error) {
	conn, err := c.dialRaw()
	if err != nil {
		return nil, false, err
	}
	if c.opts.ForceGob || c.hint.Load() == hintGob {
		return conn, false, nil
	}
	herr := negotiate(conn, timeout(c.opts.DialTimeout, DefaultDialTimeout))
	if herr == nil {
		_ = conn.SetDeadline(time.Time{}) // handshake deadline off; CallCtx arms per exchange
		c.hint.Store(hintBinary)
		return conn, true, nil
	}
	conn.Close()
	if c.hint.Load() == hintUnknown && peerRejectedPrelude(herr) {
		// A peer we had never reached in binary closed the stream on the
		// prelude: a pre-framing build whose gob decoder choked on the
		// 0x00 lead byte. Fall back to pure gob for the client's lifetime.
		c.hint.Store(hintGob)
		c.reg.Counter("rpc.client.gob_fallbacks").Inc()
		log.Printf("fedrpc: %s rejected framing prelude (%v); falling back to gob", c.addr, herr)
		conn, err := c.dialRaw()
		if err != nil {
			return nil, false, err
		}
		return conn, false, nil
	}
	return nil, false, fmt.Errorf("fedrpc: handshake with %s: %w", c.addr, herr)
}

// dialRaw establishes the shaped (and possibly TLS-wrapped) connection,
// with no format negotiation.
func (c *Client) dialRaw() (net.Conn, error) {
	raw, err := net.DialTimeout("tcp", c.addr, timeout(c.opts.DialTimeout, DefaultDialTimeout))
	if err != nil {
		return nil, fmt.Errorf("fedrpc: dial %s: %w", c.addr, err)
	}
	conn := netem.Wrap(raw, c.opts.Netem)
	if c.opts.TLS != nil {
		tconn := tls.Client(conn, c.opts.TLS)
		if err := tconn.Handshake(); err != nil {
			conn.Close()
			return nil, fmt.Errorf("fedrpc: tls handshake with %s: %w", c.addr, err)
		}
		conn = tconn
	}
	return conn, nil
}

// installLocked wires conn up as the active transport: fresh encoder and
// decoder — a gob stream cannot be resumed after a partial exchange, so
// both ends must restart their codecs. The cumulative byte counters carry
// over. Callers hold c.connMu (or own the client exclusively, as in Dial).
func (c *Client) installLocked(conn net.Conn, binary bool) {
	c.conn = conn
	c.binary = binary
	out := &countingWriter{w: conn, n: &c.bytesOut}
	in := &countingReader{r: conn, n: &c.bytesIn, wait: &c.readWait}
	c.bw = bufio.NewWriterSize(out, 1<<16)
	c.br = bufio.NewReaderSize(in, 1<<16)
	c.enc = gob.NewEncoder(c.bw)
	c.dec = gob.NewDecoder(c.br)
}

// WireBinary reports whether the current transport negotiated binary
// framing (false while broken, closed, or speaking legacy gob).
func (c *Client) WireBinary() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn != nil && c.binary
}

// Addr returns the worker address this client is connected to.
func (c *Client) Addr() string { return c.addr }

// Call sends a batch of requests as a single RPC and returns one response
// per request. A transport failure returns an error; per-request failures
// are reported in the responses.
func (c *Client) Call(reqs ...Request) ([]Response, error) {
	return c.CallCtx(context.Background(), reqs...)
}

// CallCtx is Call with a context governing the exchange and carrying trace
// metadata: an obs span installed with obs.WithSpan is populated with the
// exchange's phase timings and byte counts, and an obs.WithOp label is
// recorded on the span. Every exchange — labeled or not — is also counted
// in the client's metrics registry and appended to its recent-span ring.
//
// A context deadline becomes the call's time budget: it bounds the local
// exchange I/O (plus a small grace window so the worker's own typed
// DEADLINE_EXCEEDED reply can arrive first) and travels to the server as a
// relative deadline in the request envelope, where it bounds handler
// execution. Budget exhaustion surfaces as an error wrapping both
// ErrDeadlineExceeded and context.DeadlineExceeded. Cancelling ctx while
// the call is still queued behind another exchange returns ctx.Err()
// without touching the connection; cancelling it mid-exchange interrupts
// the I/O promptly and tears the transport down (the stream is desynced).
func (c *Client) CallCtx(ctx context.Context, reqs ...Request) ([]Response, error) {
	queueStart := time.Now()

	span := obs.SpanFrom(ctx)
	if span == nil {
		span = &obs.Span{}
	}
	span.Op = obs.Op(ctx)
	span.Addr = c.addr
	span.Start = queueStart
	span.Batch = len(reqs)
	if len(reqs) > 0 {
		span.ReqType = reqs[0].Type.String()
	}

	if err := c.acquireExchange(ctx); err != nil {
		// Cancelled while queued: no exchange started, the connection
		// belongs to someone else and stays up. The caller's own context
		// error is the whole story.
		c.record(span, reqs, err)
		return nil, err
	}
	defer c.releaseExchange()
	span.Queue = time.Since(queueStart)

	// The remaining budget (when ctx carries a deadline) travels to the
	// server as a relative deadline and bounds the local I/O below.
	var budget time.Duration
	var deadlineNanos int64
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			err := fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrDeadlineExceeded)
			c.record(span, reqs, err)
			return nil, err
		}
		deadlineNanos = int64(budget)
	}

	t, err := c.transport()
	if err != nil {
		c.record(span, reqs, err)
		return nil, err
	}
	conn := t.conn
	outStart, inStart := c.bytesOut.Load(), c.bytesIn.Load()
	c.readWait.Store(0)

	// Every failure exit tears the transport down (fail), which both closes
	// the conn — retiring its armed deadline with it — and prevents the next
	// Call from silently reusing a desynced stream.
	c.armDeadline(conn, budget)
	// An explicit cancellation must interrupt in-flight I/O now, not when
	// the armed deadline fires. Deadline expiry is deliberately left to the
	// armed grace window: the worker's typed reply is usually already in
	// flight and beats it.
	stopWatch := context.AfterFunc(ctx, func() {
		if context.Cause(ctx) == context.Canceled {
			_ = conn.SetDeadline(time.Now())
		}
	})
	defer stopWatch()
	encStart := time.Now()
	// The exchange I/O below runs while holding the exchange semaphore by
	// design: it IS the per-connection serializer (time blocked on it is
	// the span's Queue phase), not a data guard — neither gob streams nor
	// slab frames can interleave two exchanges. connMu, the data guard, is
	// never held across this I/O, and the conn deadline armed above bounds
	// the hold time.
	var serr error
	if t.binary {
		serr = writeBatch(t.enc, t.bw, reqs, deadlineNanos)
	} else {
		serr = t.enc.Encode(rpcEnvelope{Requests: reqs, DeadlineNanos: deadlineNanos})
	}
	if serr != nil {
		return c.fail(ctx, span, reqs, conn, fmt.Errorf("fedrpc: send to %s: %w", c.addr, serr))
	}
	if err := t.bw.Flush(); err != nil {
		return c.fail(ctx, span, reqs, conn, fmt.Errorf("fedrpc: flush to %s: %w", c.addr, err))
	}
	span.Encode = time.Since(encStart)

	decStart := time.Now()
	var reply rpcReply
	var derr error
	if t.binary {
		reply, derr = readReply(t.dec, t.br)
	} else {
		derr = t.dec.Decode(&reply)
	}
	if derr != nil {
		return c.fail(ctx, span, reqs, conn, fmt.Errorf("fedrpc: receive from %s: %w", c.addr, derr))
	}
	decodeWall := time.Since(decStart)
	c.disarmDeadline(conn)

	// Phase split: time blocked on the wire minus the server's reported
	// handler time is Network; decode wall time minus wire wait is Decode.
	// Both clamp at zero — the clock domains differ.
	readWait := time.Duration(c.readWait.Load())
	span.Execute = time.Duration(reply.ExecNanos)
	if span.Network = readWait - span.Execute; span.Network < 0 {
		span.Network = 0
	}
	if span.Decode = decodeWall - readWait; span.Decode < 0 {
		span.Decode = 0
	}
	span.BytesOut = c.bytesOut.Load() - outStart
	span.BytesIn = c.bytesIn.Load() - inStart

	if len(reply.Responses) != len(reqs) {
		// The stream answered, but with the wrong cardinality: a protocol
		// desync this connection cannot recover from.
		return c.fail(ctx, span, reqs, conn, fmt.Errorf("fedrpc: %s returned %d responses for %d requests",
			c.addr, len(reply.Responses), len(reqs)))
	}
	c.record(span, reqs, nil)
	return reply.Responses, nil
}

// acquireExchange takes the exchange semaphore, or gives up when ctx dies
// first. The fast path never touches ctx, so an already-cancelled context
// still wins an uncontended semaphore — matching mutex semantics for
// callers that don't race cancellation.
func (c *Client) acquireExchange(ctx context.Context) error {
	select {
	case c.exchange <- struct{}{}:
		return nil
	default:
	}
	select {
	case c.exchange <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseExchange returns the exchange semaphore.
func (c *Client) releaseExchange() { <-c.exchange }

// transportState is one Call's snapshot of the live transport, taken under
// connMu and then used lock-free for the exchange I/O (the exchange
// semaphore guarantees one exchange at a time).
type transportState struct {
	conn   net.Conn
	bw     *bufio.Writer
	br     *bufio.Reader
	enc    *gob.Encoder
	dec    *gob.Decoder
	binary bool
}

// transport returns the live transport, redialing if the client is broken.
// Dialing happens outside connMu so Close stays prompt; if Close won the
// race the fresh connection is discarded and ErrClosed returned.
func (c *Client) transport() (transportState, error) {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return transportState{}, fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
	}
	if c.conn != nil {
		t := transportState{conn: c.conn, bw: c.bw, br: c.br, enc: c.enc, dec: c.dec, binary: c.binary}
		c.connMu.Unlock()
		return t, nil
	}
	c.connMu.Unlock()

	// Broken by an earlier transport failure: reconnect transparently. Only
	// one exchange runs at a time (the exchange semaphore), so no
	// concurrent install races us.
	conn, binary, err := c.dialTransport()
	if err != nil {
		return transportState{}, err
	}
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return transportState{}, fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
	}
	c.installLocked(conn, binary)
	t := transportState{conn: c.conn, bw: c.bw, br: c.br, enc: c.enc, dec: c.dec, binary: c.binary}
	c.connMu.Unlock()
	return t, nil
}

// fail tears the transport down after a failed or desynced exchange and
// classifies the error. If a racing Close already claimed the connection
// the I/O error it provoked is reported as ErrClosed — the caller raced
// Close and must see that, not a bare transport error. Likewise, when the
// caller's own context expired or was cancelled, the I/O error is just the
// mechanism by which the interruption surfaced: the caller sees a typed
// deadline/cancellation error with the transport detail attached.
func (c *Client) fail(ctx context.Context, sp *obs.Span, reqs []Request, conn net.Conn, err error) ([]Response, error) {
	c.connMu.Lock()
	closed := c.closed
	if conn != nil && c.conn == conn {
		conn.Close()
		c.conn = nil
		c.bw, c.br, c.enc, c.dec = nil, nil, nil, nil
		c.binary = false
	}
	c.connMu.Unlock()
	switch {
	case closed:
		err = fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
	case ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		err = fmt.Errorf("fedrpc: call to %s: %w (%v)", c.addr, ErrDeadlineExceeded, err)
	case ctx != nil && errors.Is(ctx.Err(), context.Canceled):
		err = fmt.Errorf("fedrpc: call to %s cancelled: %w (%v)", c.addr, ctx.Err(), err)
	}
	c.record(sp, reqs, err)
	return nil, err
}

// record finalizes the span and reports the exchange into the registry:
// call/error/byte counters, per-request-type counters, phase histograms
// (successful exchanges only — failed ones have partial phases), the
// per-type total-latency histogram, the slow-RPC check, and the span ring.
func (c *Client) record(sp *obs.Span, reqs []Request, err error) {
	sp.Total = time.Since(sp.Start)
	c.reg.Counter("rpc.client.calls").Inc()
	for _, rq := range reqs {
		c.reg.Counter("rpc.client.requests." + rq.Type.String()).Inc()
	}
	c.reg.Counter("rpc.client.bytes_out").Add(sp.BytesOut)
	c.reg.Counter("rpc.client.bytes_in").Add(sp.BytesIn)
	if err != nil {
		sp.Err = err.Error()
		c.reg.Counter("rpc.client.errors").Inc()
	} else {
		c.reg.Histogram("rpc.client.phase.queue", obs.LatencyBuckets).Observe(sp.Queue.Seconds())
		c.reg.Histogram("rpc.client.phase.encode", obs.LatencyBuckets).Observe(sp.Encode.Seconds())
		c.reg.Histogram("rpc.client.phase.network", obs.LatencyBuckets).Observe(sp.Network.Seconds())
		c.reg.Histogram("rpc.client.phase.execute", obs.LatencyBuckets).Observe(sp.Execute.Seconds())
		c.reg.Histogram("rpc.client.phase.decode", obs.LatencyBuckets).Observe(sp.Decode.Seconds())
		if sp.ReqType != "" {
			c.reg.Histogram("rpc.client.call_seconds."+sp.ReqType, obs.LatencyBuckets).Observe(sp.Total.Seconds())
		}
	}
	if c.slowRPC > 0 && sp.Total >= c.slowRPC {
		c.reg.Counter("rpc.client.slow_calls").Inc()
		log.Printf("fedrpc: slow rpc threshold=%s %s", c.slowRPC, sp)
	}
	c.reg.RecordSpan(*sp)
}

// Broken reports whether the client currently has no live transport because
// an earlier exchange failed. The next Call (or Redial) reconnects.
func (c *Client) Broken() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn == nil && !c.closed
}

// Redial forces a fresh transport, tearing down the current connection
// first if one is live. Byte counters are preserved. Redial waits for any
// in-flight Call to finish rather than yanking its connection.
func (c *Client) Redial() error {
	_ = c.acquireExchange(context.Background()) // never fails: ctx cannot die
	defer c.releaseExchange()
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return fmt.Errorf("fedrpc: redial %s: %w", c.addr, ErrClosed)
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.bw, c.br, c.enc, c.dec = nil, nil, nil, nil
		c.binary = false
	}
	c.connMu.Unlock()

	// Dialing happens while holding only the exchange semaphore: holding
	// the serializer is what "Redial waits for in-flight Calls" means, and
	// it keeps a concurrent Call from racing the transport swap. connMu is
	// released, so Close and state queries stay responsive during a slow
	// dial.
	conn, binary, err := c.dialTransport()
	if err != nil {
		return err
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		conn.Close()
		return fmt.Errorf("fedrpc: redial %s: %w", c.addr, ErrClosed)
	}
	c.installLocked(conn, binary)
	return nil
}

// CallOne sends a single request and returns its response, converting a
// per-request failure into an error.
func (c *Client) CallOne(req Request) (Response, error) {
	return c.CallOneCtx(context.Background(), req)
}

// CallOneCtx is CallOne with trace metadata from ctx (see CallCtx).
func (c *Client) CallOneCtx(ctx context.Context, req Request) (Response, error) {
	resps, err := c.CallCtx(ctx, req)
	if err != nil {
		return Response{}, err
	}
	if !resps[0].OK {
		return resps[0], fmt.Errorf("fedrpc: %s %s: %s", c.addr, req.Type, resps[0].Err)
	}
	return resps[0], nil
}

// armDeadline bounds the upcoming RPC exchange so a dead or wedged peer
// surfaces as a timeout error instead of hanging the coordinator forever.
// When the call carries a time budget the bound tightens to the budget
// plus a short grace window — long enough for the worker's own typed
// DEADLINE_EXCEEDED reply (sent exactly at budget expiry) to cross the
// wire, short enough that a fully wedged link still fails within ~2× the
// budget.
func (c *Client) armDeadline(conn net.Conn, budget time.Duration) {
	d := c.ioTimeout
	if budget > 0 {
		grace := budget / 2
		if grace > time.Second {
			grace = time.Second
		}
		if b := budget + grace; d <= 0 || b < d {
			d = b
		}
	}
	if d > 0 {
		_ = conn.SetDeadline(time.Now().Add(d))
	} else {
		// Clear rather than skip: a cancelled previous call's watchdog may
		// have left a poison (past) deadline on this connection.
		_ = conn.SetDeadline(time.Time{})
	}
}

// disarmDeadline clears the exchange deadline so an idle connection is not
// killed between calls. Errors are ignored: a racing Close may have
// retired the connection already.
func (c *Client) disarmDeadline(conn net.Conn) {
	_ = conn.SetDeadline(time.Time{})
}

// BytesSent returns the total bytes written to this worker.
func (c *Client) BytesSent() int64 { return c.bytesOut.Load() }

// BytesReceived returns the total bytes read from this worker.
func (c *Client) BytesReceived() int64 { return c.bytesIn.Load() }

// Close terminates the connection. A closed client stays closed: unlike a
// broken one, it does not reconnect on the next Call (which then returns an
// error identifiable with errors.Is(err, ErrClosed)). Close is idempotent —
// including after a transport failure left the client Broken — and releases
// the underlying connection exactly once; repeated calls return nil.
//
// Close is prompt: it does not wait behind an in-flight Call. Closing the
// connection interrupts that call's I/O, and the call reports ErrClosed.
func (c *Client) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil // already broken: the transport died with the failure
	}
	err := c.conn.Close()
	c.conn = nil
	c.bw, c.br, c.enc, c.dec = nil, nil, nil, nil
	c.binary = false
	return err
}

type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// countingReader counts bytes and, when wait is set, accumulates the time
// spent blocked in Read — the client resets it per exchange to split reply
// latency into network wait vs. decode CPU.
type countingReader struct {
	r    interface{ Read([]byte) (int, error) }
	n    *atomic.Int64
	wait *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	var start time.Time
	if c.wait != nil {
		start = time.Now()
	}
	n, err := c.r.Read(p)
	if c.wait != nil {
		c.wait.Add(int64(time.Since(start)))
	}
	c.n.Add(int64(n))
	return n, err
}
