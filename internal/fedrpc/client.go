package fedrpc

import (
	"bufio"
	"context"
	"crypto/tls"
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/netem"
	"exdra/internal/obs"
)

// ErrClosed marks operations on a client after Close. Unlike a broken
// client — which transparently redials on the next Call — a closed client
// stays closed for good; callers distinguish the two with errors.Is.
var ErrClosed = errors.New("fedrpc: client closed")

// errSessionDetached is the teardown cause of a session retired by Redial
// (or replaced after a drain): not a failure, just the end of that
// transport's life. Calls never observe it — a detached session finishes
// its in-flight calls before tearing down — only reserve waiters do, and
// they retry on the successor session.
var errSessionDetached = errors.New("fedrpc: session detached")

// Default liveness bounds. They are backstops against dead peers, not
// pacing mechanisms, so they are generous: the WAN setting of the paper
// (~1.7 MB/s) still moves ~200 MB within the default I/O window.
const (
	DefaultDialTimeout = 10 * time.Second
	DefaultIOTimeout   = 2 * time.Minute
	DefaultIdleTimeout = 10 * time.Minute
)

// Options configure a client or server endpoint.
type Options struct {
	// TLS enables encrypted communication when non-nil (the paper's SSL
	// setting).
	TLS *tls.Config
	// Netem shapes the underlying connection (LAN/WAN emulation).
	Netem netem.Config
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// IOTimeout bounds one request write and the wait for the next reply
	// on the client, and one reply write on the server. Zero means
	// DefaultIOTimeout; negative disables deadlines (trusted in-process
	// test links).
	IOTimeout time.Duration
	// IdleTimeout bounds how long a server connection may sit between
	// requests (including mid-request stalls) before it is reclaimed.
	// Zero means DefaultIdleTimeout; negative disables it.
	IdleTimeout time.Duration
	// Metrics is the registry RPC counters, histograms, and trace spans
	// report into. Nil uses obs.Default(), so an unconfigured endpoint
	// still shows up on the process /metrics page.
	Metrics *obs.Registry
	// SlowRPC, when positive, flags any exchange whose total duration
	// (queueing included) reaches it: a structured key=value log line is
	// emitted and rpc.client.slow_calls incremented.
	SlowRPC time.Duration
	// ForceGob disables binary wire framing (wire.go) on this endpoint: a
	// client never sends the version prelude, a server never sniffs for
	// it. Both then speak the pure-gob legacy format, exactly like a
	// pre-framing build — used by tests and benchmarks to exercise the
	// fallback path and to measure the old encoding.
	ForceGob bool
	// MaxConns caps concurrently served connections (server side only).
	// Accepts beyond the cap are rejected with backoff: the connection is
	// held briefly and closed without a byte, so a pooling client cannot
	// exhaust a worker's goroutines and a reconnect storm is paced rather
	// than amplified. Zero or negative means unlimited.
	MaxConns int
	// Window caps how many calls may be pipelined in flight on one
	// connection (client side). Values below 2 (including the zero value)
	// keep the legacy lock-step behavior: one exchange at a time. Above
	// that, dependent-free calls overlap on the wire — N calls cost ~1
	// round trip instead of N — as long as the peer echoes call tags;
	// against a pre-pipelining peer the client transparently degrades to
	// lock-step (see tagHint).
	Window int
}

// metrics resolves the configured registry against the process default.
func (o Options) metrics() *obs.Registry {
	if o.Metrics != nil {
		return o.Metrics
	}
	return obs.Default()
}

// timeout resolves a configured duration against its default: zero picks
// the default, negative disables (returns 0).
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// rpcEnvelope is the on-wire unit: one envelope per Call. DeadlineNanos is
// the relative call budget (0 = none) and Tag the pipelining call ID (0 =
// lock-step); like their binary-framing counterparts (wireEnvelope) both
// ride gob's skip-unknown/zero-missing field semantics, so old peers
// interoperate unchanged in both directions.
type rpcEnvelope struct {
	Requests      []Request
	DeadlineNanos int64
	Tag           uint64
}

// rpcReply carries the batch responses plus the server-side handler wall
// time, which the client uses to split its blocked-on-reply wait into
// Network and Execute span phases, plus the echoed call tag that routes an
// out-of-order reply to its call. Old peers omit both extra fields (gob
// tolerates both directions): they report Execute=0 and Tag=0. This is the
// legacy-gob reply shape; binary-framed connections use wireReply
// (wire.go), which readReply converts back into this form.
type rpcReply struct {
	Responses []Response
	ExecNanos int64
	Tag       uint64
}

// Format-hint states: what dialTransport learned about the peer. The hint
// starts unknown, becomes sticky-binary after one successful handshake
// (later handshake failures are then ordinary transport errors, never a
// downgrade), and becomes sticky-gob when an unknown peer slams the
// stream shut on the prelude — the signature of a pre-framing build.
const (
	hintUnknown int32 = iota
	hintBinary
	hintGob
)

// Tag-hint states: what the first reply taught us about the peer's
// pipelining support. Until a session's first reply arrives the window is
// held at 1 (the probe); a reply echoing our tag opens it to
// Options.Window for the client's lifetime, a tagless reply pins the
// client to lock-step for good — the tag twin of the gob fallback.
const (
	tagUnknown int32 = iota
	tagAware
	tagLockstep
)

// pendingCall is one in-flight exchange awaiting its reply. Exactly one
// party ever sends on done: the reader (matched reply) or the session
// teardown (transport failure) — never both, because both first remove the
// call from the session tables under the session mutex.
type pendingCall struct {
	tag  uint64
	done chan callReply // buffered (cap 1): the sender never blocks
}

// callReply is what the reader goroutine delivers per matched reply: the
// responses plus the per-call accounting slice of the shared cumulative
// counters (readWait/bytesIn deltas around this reply's decode).
type callReply struct {
	resps      []Response
	execNanos  int64
	readWait   time.Duration
	bytesIn    int64
	decodeWall time.Duration
	err        error
}

// sessionDeadError marks a call that found its session already torn down
// before touching the wire; CallCtx retries it on a fresh session.
type sessionDeadError struct{ err error }

func (e *sessionDeadError) Error() string {
	if e.err == nil {
		return "fedrpc: session dead"
	}
	return e.err.Error()
}
func (e *sessionDeadError) Unwrap() error { return e.err }

// session is one transport's lifetime: the connection, its codecs, the
// in-flight call tables, and the single reader goroutine demultiplexing
// replies. A Client replaces its session wholesale on failure or Redial —
// a gob stream cannot be resumed after a partial exchange — while draining
// sessions finish their in-flight calls before closing.
type session struct {
	c      *Client
	conn   net.Conn
	bw     *bufio.Writer
	br     *bufio.Reader
	enc    *gob.Encoder
	dec    *gob.Decoder
	binary bool

	// writeTok serializes request writes (send to acquire, receive to
	// release): neither gob streams nor slab frames can interleave two
	// encodes. The reader never needs it — replies flow on the other half
	// of the duplex.
	writeTok chan struct{}
	// work wakes the reader (buffered, cap 1): signaled after every flush
	// and on teardown/detach, so an idle session keeps no outstanding
	// read and no read deadline.
	work chan struct{}

	mu       sync.Mutex
	inflight map[uint64]*pendingCall // written calls by tag; guarded by mu
	fifo     []*pendingCall          // written calls in send order; guarded by mu
	nextTag  uint64                  // last allocated call tag; guarded by mu
	active   int                     // reserved window slots; guarded by mu
	awaited  int                     // flushed, not yet answered; guarded by mu
	curWin   int                     // current in-flight cap (1 while probing/lock-step); guarded by mu
	probing  bool                    // first reply resolves the peer's tag support; guarded by mu
	waiters  []chan struct{}         // calls queued for a window slot; guarded by mu
	detached bool                    // draining: no new calls, in-flight finish; guarded by mu
	dead     bool                    // torn down; guarded by mu
	deadErr  error                   // teardown cause; guarded by mu
}

// Client is a coordinator-side connection to one federated worker. A client
// is safe for concurrent use; up to Options.Window calls are pipelined on
// the connection (tagged envelopes, out-of-order replies), and the
// coordinator additionally parallelizes across workers, as in the paper.
//
// A transport failure (encode, flush, decode, or timeout) leaves the gob
// stream desynchronized, so the client tears the session down — failing
// every in-flight call on it with the same error surface a lock-step
// failure has — and marks itself broken instead of silently reusing the
// dead stream; the next Call (or an explicit Redial) transparently
// re-establishes the transport. The cumulative byte counters survive
// reconnects.
//
// connMu guards only the session pointer set and is never held across I/O
// or dialing; per-session state lives behind session.mu, acquired strictly
// after connMu when both are needed. Close takes only connMu, then tears
// every live session down — interrupting in-flight calls, which observe
// the closed flag and surface ErrClosed.
type Client struct {
	addr      string
	opts      Options
	ioTimeout time.Duration
	slowRPC   time.Duration
	window    int
	reg       *obs.Registry

	connMu   sync.Mutex
	sess     *session              // active session; nil while broken; guarded by connMu
	sessions map[*session]struct{} // every live session, draining included; guarded by connMu
	dialing  chan struct{}         // closed when the in-flight dial settles; guarded by connMu
	closed   bool                  // Close was called; distinguishes closed from broken; guarded by connMu

	hint     atomic.Int32 // hint* state: survives transport teardown across redials
	tagHint  atomic.Int32 // tag* state: survives transport teardown across redials
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	readWait atomic.Int64 // cumulative ns blocked in conn reads; reader slices per reply
}

// Dial connects to a federated worker at addr.
func Dial(addr string, opts Options) (*Client, error) {
	window := opts.Window
	if window < 1 {
		window = 1
	}
	c := &Client{
		addr:      addr,
		opts:      opts,
		ioTimeout: timeout(opts.IOTimeout, DefaultIOTimeout),
		slowRPC:   opts.SlowRPC,
		window:    window,
		reg:       opts.metrics(),
		sessions:  map[*session]struct{}{},
	}
	conn, binary, err := c.dialTransport()
	if err != nil {
		return nil, err
	}
	s := c.newSession(conn, binary) // client not yet shared: exclusive access
	c.sess = s
	c.sessions[s] = struct{}{}
	return c, nil
}

// dialTransport establishes a shaped (and possibly TLS-wrapped) connection
// and negotiates the wire format on it; the bool reports binary framing.
// It holds no locks, so a slow dial never delays Close or state queries.
//
// Negotiation is a dedicated handshake at connect time — never piggybacked
// on the first request batch — so a fallback redial re-sends five prelude
// bytes, not application requests (an EXEC_UDF resent after an ambiguous
// failure could double-execute). The cost is one extra RTT per connection;
// connections are standing, so the RTT amortizes across the session.
func (c *Client) dialTransport() (net.Conn, bool, error) {
	conn, err := c.dialRaw()
	if err != nil {
		return nil, false, err
	}
	if c.opts.ForceGob || c.hint.Load() == hintGob {
		return conn, false, nil
	}
	herr := negotiate(conn, timeout(c.opts.DialTimeout, DefaultDialTimeout))
	if herr == nil {
		_ = conn.SetDeadline(time.Time{}) // handshake deadline off; per-exchange arming follows
		c.hint.Store(hintBinary)
		return conn, true, nil
	}
	conn.Close()
	if c.hint.Load() == hintUnknown && peerRejectedPrelude(herr) {
		// A peer we had never reached in binary closed the stream on the
		// prelude: a pre-framing build whose gob decoder choked on the
		// 0x00 lead byte. Fall back to pure gob for the client's lifetime.
		c.hint.Store(hintGob)
		c.reg.Counter("rpc.client.gob_fallbacks").Inc()
		log.Printf("fedrpc: %s rejected framing prelude (%v); falling back to gob", c.addr, herr)
		conn, err := c.dialRaw()
		if err != nil {
			return nil, false, err
		}
		return conn, false, nil
	}
	return nil, false, fmt.Errorf("fedrpc: handshake with %s: %w", c.addr, herr)
}

// dialRaw establishes the shaped (and possibly TLS-wrapped) connection,
// with no format negotiation.
func (c *Client) dialRaw() (net.Conn, error) {
	raw, err := net.DialTimeout("tcp", c.addr, timeout(c.opts.DialTimeout, DefaultDialTimeout))
	if err != nil {
		return nil, fmt.Errorf("fedrpc: dial %s: %w", c.addr, err)
	}
	conn := netem.Wrap(raw, c.opts.Netem)
	if c.opts.TLS != nil {
		tconn := tls.Client(conn, c.opts.TLS)
		if err := tconn.Handshake(); err != nil {
			conn.Close()
			return nil, fmt.Errorf("fedrpc: tls handshake with %s: %w", c.addr, err)
		}
		conn = tconn
	}
	return conn, nil
}

// newSession wires conn up as a live session: fresh encoder and decoder —
// a gob stream cannot be resumed after a partial exchange, so both ends
// must restart their codecs — and the session's reader goroutine. The
// cumulative byte counters carry over.
func (c *Client) newSession(conn net.Conn, binary bool) *session {
	out := &countingWriter{w: conn, n: &c.bytesOut}
	in := &countingReader{r: conn, n: &c.bytesIn, wait: &c.readWait}
	bw := bufio.NewWriterSize(out, 1<<16)
	br := bufio.NewReaderSize(in, 1<<16)
	s := &session{
		c:        c,
		conn:     conn,
		bw:       bw,
		br:       br,
		enc:      gob.NewEncoder(bw),
		dec:      gob.NewDecoder(br),
		binary:   binary,
		writeTok: make(chan struct{}, 1),
		work:     make(chan struct{}, 1),
		inflight: map[uint64]*pendingCall{},
		curWin:   1,
	}
	switch c.tagHint.Load() {
	case tagAware:
		s.curWin = c.window
	case tagUnknown:
		// Hold the window at 1 until the first reply proves (or refutes)
		// tag support; a tagLockstep verdict keeps it there for good.
		s.probing = true
	}
	go s.readLoop()
	return s
}

// WireBinary reports whether the current transport negotiated binary
// framing (false while broken, closed, or speaking legacy gob).
func (c *Client) WireBinary() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.sess != nil && c.sess.binary
}

// WindowCap reports how many calls may currently be multiplexed in flight
// on this client: Options.Window once a peer has proven it echoes call
// tags, 1 before that (and forever against a lock-step peer). Pools use it
// to decide between multiplexing onto a live connection and dialing a new
// one.
func (c *Client) WindowCap() int {
	if c.window <= 1 {
		return 1
	}
	if c.tagHint.Load() == tagAware {
		return c.window
	}
	return 1
}

// Addr returns the worker address this client is connected to.
func (c *Client) Addr() string { return c.addr }

// Call sends a batch of requests as a single RPC and returns one response
// per request. A transport failure returns an error; per-request failures
// are reported in the responses.
func (c *Client) Call(reqs ...Request) ([]Response, error) {
	return c.CallCtx(context.Background(), reqs...)
}

// CallCtx is Call with a context governing the exchange and carrying trace
// metadata: an obs span installed with obs.WithSpan is populated with the
// exchange's phase timings and byte counts, and an obs.WithOp label is
// recorded on the span. Every exchange — labeled or not — is also counted
// in the client's metrics registry and appended to its recent-span ring.
//
// A context deadline becomes the call's time budget: it bounds the local
// exchange I/O (plus a small grace window so the worker's own typed
// DEADLINE_EXCEEDED reply can arrive first) and travels to the server as a
// relative deadline in the request envelope, where it bounds handler
// execution. Budget exhaustion surfaces as an error wrapping both
// ErrDeadlineExceeded and context.DeadlineExceeded. Cancelling ctx while
// the call is still queued for a window slot returns ctx.Err() without
// touching the connection; cancelling it once the call is on the wire
// interrupts the exchange promptly and tears the session down (the stream
// is desynced), failing any calls pipelined alongside it with a transport
// error their retry policy handles like any other connection loss.
func (c *Client) CallCtx(ctx context.Context, reqs ...Request) ([]Response, error) {
	queueStart := time.Now()

	span := obs.SpanFrom(ctx)
	if span == nil {
		span = &obs.Span{}
	}
	span.Op = obs.Op(ctx)
	span.Addr = c.addr
	span.Start = queueStart
	span.Batch = len(reqs)
	if len(reqs) > 0 {
		span.ReqType = reqs[0].Type.String()
	}

	// A call can land on a session that died (or detached for a redial)
	// between lookup and reservation; that touched no wire state, so try
	// a successor session a bounded number of times before giving up.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		s, err := c.session(ctx)
		if err != nil {
			c.record(span, reqs, err)
			return nil, err
		}
		resps, err := c.callOn(ctx, s, span, reqs, queueStart)
		var dead *sessionDeadError
		if !errors.As(err, &dead) {
			return resps, err
		}
		lastErr = dead.err
	}
	err := c.classify(ctx, lastErr)
	if err == nil {
		err = fmt.Errorf("fedrpc: call to %s: transport churn", c.addr)
	}
	c.record(span, reqs, err)
	return nil, err
}

// callOn runs one exchange attempt on s. A *sessionDeadError return means
// nothing touched the wire and the caller may retry on a fresh session;
// every other outcome is final and already recorded.
func (c *Client) callOn(ctx context.Context, s *session, span *obs.Span, reqs []Request, queueStart time.Time) ([]Response, error) {
	if err := s.reserve(ctx); err != nil {
		var dead *sessionDeadError
		if errors.As(err, &dead) {
			return nil, err
		}
		// Cancelled while queued for a slot: no exchange started, the
		// connection belongs to the in-flight calls and stays up. The
		// caller's own context error is the whole story.
		c.record(span, reqs, err)
		return nil, err
	}
	if err := s.acquireWrite(ctx); err != nil {
		s.unreserve()
		c.record(span, reqs, err)
		return nil, err
	}
	span.Queue = time.Since(queueStart)

	// The remaining budget (when ctx carries a deadline) travels to the
	// server as a relative deadline and bounds the local I/O below.
	var budget time.Duration
	var deadlineNanos int64
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			s.releaseWrite()
			s.unreserve()
			err := fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrDeadlineExceeded)
			c.record(span, reqs, err)
			return nil, err
		}
		deadlineNanos = int64(budget)
	}

	call, err := s.register()
	if err != nil {
		s.releaseWrite()
		s.unreserve()
		return nil, err // session died while we queued: retryable
	}

	// Write the tagged envelope under the write token. An explicit
	// cancellation must interrupt a blocked write now, not when the write
	// deadline fires; the watchdog is scoped strictly to this write (armed
	// before, stopped right after), so a late firing can only poison a
	// session the cancellation is about to tear down anyway.
	conn := s.conn
	s.armWriteDeadline(budget)
	stopWatch := context.AfterFunc(ctx, func() {
		if context.Cause(ctx) == context.Canceled {
			_ = conn.SetWriteDeadline(time.Now())
		}
	})
	outStart := c.bytesOut.Load()
	encStart := time.Now()
	var serr error
	if s.binary {
		serr = writeBatch(s.enc, s.bw, reqs, deadlineNanos, call.tag)
	} else {
		serr = s.enc.Encode(rpcEnvelope{Requests: reqs, DeadlineNanos: deadlineNanos, Tag: call.tag})
	}
	if serr != nil {
		serr = fmt.Errorf("fedrpc: send to %s: %w", c.addr, serr)
	} else if ferr := s.bw.Flush(); ferr != nil {
		serr = fmt.Errorf("fedrpc: flush to %s: %w", c.addr, ferr)
	}
	stopWatch()
	span.Encode = time.Since(encStart)
	span.BytesOut = c.bytesOut.Load() - outStart
	if serr != nil {
		// A partial write desyncs the stream for every call on it.
		s.releaseWrite()
		c.failSession(s, serr)
		err := c.classify(ctx, serr)
		c.record(span, reqs, err)
		return nil, err
	}
	s.flushed()
	s.releaseWrite()

	// Await the demultiplexed reply. Deadline expiry grants the worker's
	// typed DEADLINE_EXCEEDED reply a short grace window before the
	// session is declared wedged; cancellation interrupts immediately.
	var cr callReply
	select {
	case cr = <-call.done:
	case <-ctx.Done():
		cr = c.interrupt(ctx, s, call, budget)
	}
	if cr.err != nil {
		err := c.classify(ctx, cr.err)
		c.record(span, reqs, err)
		return nil, err
	}

	// Phase split: time blocked on the wire minus the server's reported
	// handler time is Network; decode wall time minus wire wait is Decode.
	// Both clamp at zero — the clock domains differ.
	span.Execute = time.Duration(cr.execNanos)
	if span.Network = cr.readWait - span.Execute; span.Network < 0 {
		span.Network = 0
	}
	if span.Decode = cr.decodeWall - cr.readWait; span.Decode < 0 {
		span.Decode = 0
	}
	span.BytesIn = cr.bytesIn

	if len(cr.resps) != len(reqs) {
		// The stream answered, but with the wrong cardinality: a protocol
		// desync this connection cannot recover from.
		serr := fmt.Errorf("fedrpc: %s returned %d responses for %d requests",
			c.addr, len(cr.resps), len(reqs))
		c.failSession(s, serr)
		err := c.classify(ctx, serr)
		c.record(span, reqs, err)
		return nil, err
	}
	c.record(span, reqs, nil)
	return cr.resps, nil
}

// interrupt handles ctx dying while the call is on the wire: prefer a
// reply that already landed; otherwise grant deadline expiry a grace
// window for the worker's typed reply, then tear the session down and
// collect the teardown verdict.
func (c *Client) interrupt(ctx context.Context, s *session, call *pendingCall, budget time.Duration) callReply {
	select {
	case cr := <-call.done:
		return cr
	default:
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) && budget > 0 {
		grace := budget / 2
		if grace > time.Second {
			grace = time.Second
		}
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case cr := <-call.done:
			return cr
		case <-t.C:
		}
	}
	c.failSession(s, fmt.Errorf("fedrpc: exchange with %s interrupted: %w", c.addr, ctx.Err()))
	return <-call.done
}

// classify maps a transport-level failure onto the caller-facing error. If
// a racing Close already claimed the connection the I/O error it provoked
// is reported as ErrClosed — the caller raced Close and must see that, not
// a bare transport error. Likewise, when the caller's own context expired
// or was cancelled, the I/O error is just the mechanism by which the
// interruption surfaced: the caller sees a typed deadline/cancellation
// error with the transport detail attached.
func (c *Client) classify(ctx context.Context, err error) error {
	c.connMu.Lock()
	closed := c.closed
	c.connMu.Unlock()
	switch {
	case closed:
		return fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
	case ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		return fmt.Errorf("fedrpc: call to %s: %w (%v)", c.addr, ErrDeadlineExceeded, err)
	case ctx != nil && errors.Is(ctx.Err(), context.Canceled):
		return fmt.Errorf("fedrpc: call to %s cancelled: %w (%v)", c.addr, ctx.Err(), err)
	}
	return err
}

// session returns the live session, redialing if the client is broken.
// Concurrent callers share one dial (the dialing latch); dialing happens
// outside connMu so Close stays prompt, and if Close won the race the
// fresh connection is discarded and ErrClosed returned.
func (c *Client) session(ctx context.Context) (*session, error) {
	for {
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			return nil, fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
		}
		if c.sess != nil {
			s := c.sess
			c.connMu.Unlock()
			return s, nil
		}
		if ch := c.dialing; ch != nil {
			c.connMu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				// Someone else's dial proceeds; we just stop waiting.
				return nil, ctx.Err()
			}
		}
		ch := make(chan struct{})
		c.dialing = ch
		c.connMu.Unlock()
		s, err := c.dialSession()
		c.connMu.Lock()
		c.dialing = nil
		c.connMu.Unlock()
		close(ch)
		return s, err
	}
}

// dialSession dials a fresh transport and installs it as the active
// session. The caller owns the dialing latch.
func (c *Client) dialSession() (*session, error) {
	conn, binary, err := c.dialTransport()
	if err != nil {
		return nil, err
	}
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
	}
	s := c.newSession(conn, binary)
	c.sess = s
	c.sessions[s] = struct{}{}
	c.connMu.Unlock()
	return s, nil
}

// failSession retires s from the client and tears it down: every call
// in flight on it fails with err, reserve waiters wake and retry on the
// successor. Safe to call from any goroutine; idempotent per session.
func (c *Client) failSession(s *session, err error) {
	c.connMu.Lock()
	if c.sess == s {
		c.sess = nil
	}
	delete(c.sessions, s)
	c.connMu.Unlock()
	s.teardown(err)
}

// record finalizes the span and reports the exchange into the registry:
// call/error/byte counters, per-request-type counters, phase histograms
// (successful exchanges only — failed ones have partial phases), the
// per-type total-latency histogram, the slow-RPC check, and the span ring.
func (c *Client) record(sp *obs.Span, reqs []Request, err error) {
	sp.Total = time.Since(sp.Start)
	c.reg.Counter("rpc.client.calls").Inc()
	for _, rq := range reqs {
		c.reg.Counter("rpc.client.requests." + rq.Type.String()).Inc()
	}
	c.reg.Counter("rpc.client.bytes_out").Add(sp.BytesOut)
	c.reg.Counter("rpc.client.bytes_in").Add(sp.BytesIn)
	if err != nil {
		sp.Err = err.Error()
		c.reg.Counter("rpc.client.errors").Inc()
	} else {
		c.reg.Histogram("rpc.client.phase.queue", obs.LatencyBuckets).Observe(sp.Queue.Seconds())
		c.reg.Histogram("rpc.client.phase.encode", obs.LatencyBuckets).Observe(sp.Encode.Seconds())
		c.reg.Histogram("rpc.client.phase.network", obs.LatencyBuckets).Observe(sp.Network.Seconds())
		c.reg.Histogram("rpc.client.phase.execute", obs.LatencyBuckets).Observe(sp.Execute.Seconds())
		c.reg.Histogram("rpc.client.phase.decode", obs.LatencyBuckets).Observe(sp.Decode.Seconds())
		if sp.ReqType != "" {
			c.reg.Histogram("rpc.client.call_seconds."+sp.ReqType, obs.LatencyBuckets).Observe(sp.Total.Seconds())
		}
	}
	if c.slowRPC > 0 && sp.Total >= c.slowRPC {
		c.reg.Counter("rpc.client.slow_calls").Inc()
		log.Printf("fedrpc: slow rpc threshold=%s %s", c.slowRPC, sp)
	}
	c.reg.RecordSpan(*sp)
}

// Broken reports whether the client currently has no live transport because
// an earlier exchange failed. The next Call (or Redial) reconnects.
func (c *Client) Broken() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.sess == nil && !c.closed
}

// Redial forces a fresh transport. The current session (if live) is
// detached rather than yanked: calls already in flight on it finish on the
// old connection, which closes itself once the last one drains, while the
// fresh connection serves everything new. Byte counters are preserved.
func (c *Client) Redial() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return fmt.Errorf("fedrpc: redial %s: %w", c.addr, ErrClosed)
	}
	old := c.sess
	c.sess = nil
	c.connMu.Unlock()
	if old != nil {
		old.detach()
	}
	if _, err := c.session(context.Background()); err != nil {
		if errors.Is(err, ErrClosed) {
			return fmt.Errorf("fedrpc: redial %s: %w", c.addr, ErrClosed)
		}
		return err
	}
	return nil
}

// CallOne sends a single request and returns its response, converting a
// per-request failure into an error.
func (c *Client) CallOne(req Request) (Response, error) {
	return c.CallOneCtx(context.Background(), req)
}

// CallOneCtx is CallOne with trace metadata from ctx (see CallCtx). A
// failed response with a known Code surfaces as the matching typed error
// (a worker-reported DEADLINE_EXCEEDED satisfies
// errors.Is(err, ErrDeadlineExceeded) exactly like a local expiry), so
// breaker and retry verdicts agree across the transport and typed-reply
// paths.
func (c *Client) CallOneCtx(ctx context.Context, req Request) (Response, error) {
	resps, err := c.CallCtx(ctx, req)
	if err != nil {
		return Response{}, err
	}
	if !resps[0].OK {
		return resps[0], ResponseError(c.addr, req.Type, resps[0])
	}
	return resps[0], nil
}

// BytesSent returns the total bytes written to this worker.
func (c *Client) BytesSent() int64 { return c.bytesOut.Load() }

// BytesReceived returns the total bytes read from this worker.
func (c *Client) BytesReceived() int64 { return c.bytesIn.Load() }

// Close terminates the connection. A closed client stays closed: unlike a
// broken one, it does not reconnect on the next Call (which then returns an
// error identifiable with errors.Is(err, ErrClosed)). Close is idempotent —
// including after a transport failure left the client Broken — and releases
// the underlying connections exactly once; repeated calls return nil.
//
// Close is prompt: it does not wait behind in-flight calls. Tearing the
// sessions down interrupts their I/O, and those calls report ErrClosed.
func (c *Client) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	all := make([]*session, 0, len(c.sessions))
	for s := range c.sessions {
		all = append(all, s)
	}
	c.sess = nil
	c.sessions = map[*session]struct{}{}
	c.connMu.Unlock()
	err := fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
	for _, s := range all {
		s.teardown(err)
	}
	return nil
}

// --- session machinery ----------------------------------------------------

// reserve claims an in-flight window slot, waiting (FIFO-ish: woken
// waiters re-race) while the window is full, until ctx dies first. The
// fast path never touches ctx, so an already-cancelled context still wins
// a free slot — matching mutex semantics for callers that don't race
// cancellation. A *sessionDeadError means the session is gone and the call
// should retry on its successor.
func (s *session) reserve(ctx context.Context) error {
	s.mu.Lock()
	for {
		if s.dead {
			err := s.deadErr
			s.mu.Unlock()
			return &sessionDeadError{err: err}
		}
		if s.detached {
			s.mu.Unlock()
			return &sessionDeadError{err: errSessionDetached}
		}
		if s.active < s.curWin {
			s.active++
			s.mu.Unlock()
			return nil
		}
		w := make(chan struct{}, 1)
		s.waiters = append(s.waiters, w)
		s.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			s.mu.Lock()
			s.dropWaiterLocked(w)
			s.mu.Unlock()
			// Wakes are broadcast (every waiter re-checks), so a wake this
			// waiter consumed — or will never consume — strands no slot.
			return ctx.Err()
		}
		s.mu.Lock()
	}
}

// unreserve returns a window slot claimed by reserve for a call that never
// registered (budget expired, cancelled waiting for the write token, or
// the session died underneath it). Registered calls release their slot
// through reply delivery or teardown instead.
func (s *session) unreserve() {
	s.mu.Lock()
	s.active--
	waiters := s.takeWaitersLocked()
	drained := s.detached && !s.dead && s.active == 0
	s.mu.Unlock()
	wakeAll(waiters)
	if drained {
		s.c.failSession(s, errSessionDetached)
	}
}

// acquireWrite takes the write token, or gives up when ctx dies first (the
// fast path never touches ctx, mirroring reserve).
func (s *session) acquireWrite(ctx context.Context) error {
	select {
	case s.writeTok <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.writeTok <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseWrite returns the write token.
func (s *session) releaseWrite() { <-s.writeTok }

// register allocates the call's tag and enters it into the in-flight
// tables. From here on exactly one of the reader or teardown will complete
// the call.
func (s *session) register() (*pendingCall, error) {
	s.mu.Lock()
	if s.dead {
		err := s.deadErr
		s.mu.Unlock()
		return nil, &sessionDeadError{err: err}
	}
	s.nextTag++
	call := &pendingCall{tag: s.nextTag, done: make(chan callReply, 1)}
	s.inflight[call.tag] = call
	s.fifo = append(s.fifo, call)
	s.mu.Unlock()
	return call, nil
}

// flushed marks one written batch as awaiting its reply and wakes the
// reader. Called after Flush succeeds, while still holding the write
// token, so the reader's decode window for a sole in-flight call starts at
// the moment its bytes left the buffer.
func (s *session) flushed() {
	s.mu.Lock()
	s.awaited++
	s.mu.Unlock()
	select {
	case s.work <- struct{}{}:
	default:
	}
}

// armWriteDeadline bounds the upcoming batch write so a dead or wedged
// peer surfaces as a timeout error instead of hanging the writer forever.
// When the call carries a time budget the bound tightens to the budget
// plus a short grace window. Only write deadlines: the reader owns the
// read deadline.
func (s *session) armWriteDeadline(budget time.Duration) {
	d := s.c.ioTimeout
	if budget > 0 {
		grace := budget / 2
		if grace > time.Second {
			grace = time.Second
		}
		if b := budget + grace; d <= 0 || b < d {
			d = b
		}
	}
	if d > 0 {
		_ = s.conn.SetWriteDeadline(time.Now().Add(d))
	} else {
		// Clear rather than skip: a cancelled previous call's watchdog may
		// have left a poison (past) deadline on this connection.
		_ = s.conn.SetWriteDeadline(time.Time{})
	}
}

// readLoop is the session's single reader: it sleeps while nothing is
// awaited (an idle connection keeps no outstanding read and no read
// deadline), then decodes replies and routes each to its call — by echoed
// tag when the peer pipelines, by send order when it answers untagged.
// Any decode failure, unknown tag, or unsolicited reply is a stream
// desync the session cannot recover from: teardown fails every in-flight
// call and the reader exits.
func (s *session) readLoop() {
	for {
		s.mu.Lock()
		for s.awaited == 0 {
			if s.dead {
				s.mu.Unlock()
				return
			}
			if s.detached && s.active == 0 {
				s.mu.Unlock()
				s.c.failSession(s, errSessionDetached)
				return
			}
			s.mu.Unlock()
			<-s.work
			s.mu.Lock()
		}
		if s.dead {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		// The I/O timeout bounds the wait for the next reply while calls
		// are in flight; per-call budgets are enforced by their callers.
		if s.c.ioTimeout > 0 {
			_ = s.conn.SetReadDeadline(time.Now().Add(s.c.ioTimeout))
		} else {
			_ = s.conn.SetReadDeadline(time.Time{})
		}
		waitStart := time.Duration(s.c.readWait.Load())
		inStart := s.c.bytesIn.Load()
		decStart := time.Now()
		var reply rpcReply
		var derr error
		if s.binary {
			reply, derr = readReply(s.dec, s.br)
		} else {
			derr = s.dec.Decode(&reply)
		}
		if derr != nil {
			s.c.failSession(s, fmt.Errorf("fedrpc: receive from %s: %w", s.c.addr, derr))
			return
		}
		cr := callReply{
			resps:      reply.Responses,
			execNanos:  reply.ExecNanos,
			readWait:   time.Duration(s.c.readWait.Load()) - waitStart,
			bytesIn:    s.c.bytesIn.Load() - inStart,
			decodeWall: time.Since(decStart),
		}

		s.mu.Lock()
		var call *pendingCall
		if reply.Tag != 0 {
			call = s.inflight[reply.Tag]
			if call == nil {
				s.mu.Unlock()
				s.c.failSession(s, fmt.Errorf("fedrpc: %s answered unknown call tag %d (duplicate or forged reply)",
					s.c.addr, reply.Tag))
				return
			}
			delete(s.inflight, reply.Tag)
			s.dropFIFOLocked(call)
		} else {
			if len(s.fifo) == 0 {
				s.mu.Unlock()
				s.c.failSession(s, fmt.Errorf("fedrpc: %s sent an unsolicited reply", s.c.addr))
				return
			}
			call = s.fifo[0]
			s.fifo = s.fifo[1:]
			delete(s.inflight, call.tag)
		}
		s.active--
		s.awaited--
		if s.probing {
			// First reply on a fresh client: does the peer echo tags?
			s.probing = false
			if reply.Tag != 0 {
				s.c.tagHint.Store(tagAware)
				s.curWin = s.c.window
			} else {
				s.c.tagHint.Store(tagLockstep)
			}
		}
		waiters := s.takeWaitersLocked()
		drained := s.detached && s.active == 0
		s.mu.Unlock()
		wakeAll(waiters)
		call.done <- cr
		if drained {
			s.c.failSession(s, errSessionDetached)
			return
		}
	}
}

// detach retires the session from new calls while letting in-flight ones
// drain on the old connection; the last one out tears it down. An idle
// session tears down immediately.
func (s *session) detach() {
	s.mu.Lock()
	if s.dead || s.detached {
		s.mu.Unlock()
		return
	}
	s.detached = true
	idle := s.active == 0
	waiters := s.takeWaitersLocked()
	s.mu.Unlock()
	wakeAll(waiters)
	select {
	case s.work <- struct{}{}:
	default:
	}
	if idle {
		s.c.failSession(s, errSessionDetached)
	}
}

// teardown kills the session: the connection closes, every in-flight call
// completes with err, every reserve waiter wakes (to observe dead and
// retry elsewhere), and the reader exits. Idempotent; never touches
// Client.connMu (failSession layers that on top).
func (s *session) teardown(err error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	s.deadErr = err
	calls := s.fifo
	s.fifo = nil
	s.inflight = map[uint64]*pendingCall{}
	s.active -= len(calls)
	s.awaited = 0
	waiters := s.takeWaitersLocked()
	s.mu.Unlock()
	s.conn.Close()
	wakeAll(waiters)
	for _, call := range calls {
		call.done <- callReply{err: err}
	}
	select {
	case s.work <- struct{}{}:
	default:
	}
}

// takeWaitersLocked empties the waiter list for a broadcast wake. Callers
// hold s.mu and must send only after releasing it.
func (s *session) takeWaitersLocked() []chan struct{} {
	w := s.waiters
	s.waiters = nil
	return w
}

// dropWaiterLocked removes w from the waiter list if still queued. Callers
// hold s.mu.
func (s *session) dropWaiterLocked(w chan struct{}) {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// dropFIFOLocked removes call from the send-order queue (an out-of-order
// tagged reply claimed it). Callers hold s.mu.
func (s *session) dropFIFOLocked(call *pendingCall) {
	for i, q := range s.fifo {
		if q == call {
			s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
			return
		}
	}
}

// wakeAll sends one non-blocking wake to each waiter channel (each is
// buffered, cap 1, so the signal is never lost).
func wakeAll(waiters []chan struct{}) {
	for _, w := range waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// countingReader counts bytes and, when wait is set, accumulates the time
// spent blocked in Read — the reader goroutine slices the cumulative total
// per reply to split latency into network wait vs. decode CPU.
type countingReader struct {
	r    interface{ Read([]byte) (int, error) }
	n    *atomic.Int64
	wait *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	var start time.Time
	if c.wait != nil {
		start = time.Now()
	}
	n, err := c.r.Read(p)
	if c.wait != nil {
		c.wait.Add(int64(time.Since(start)))
	}
	c.n.Add(int64(n))
	return n, err
}
