package fedrpc

import (
	"bufio"
	"crypto/tls"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/netem"
)

// ErrClosed marks operations on a client after Close. Unlike a broken
// client — which transparently redials on the next Call — a closed client
// stays closed for good; callers distinguish the two with errors.Is.
var ErrClosed = errors.New("fedrpc: client closed")

// Default liveness bounds. They are backstops against dead peers, not
// pacing mechanisms, so they are generous: the WAN setting of the paper
// (~1.7 MB/s) still moves ~200 MB within the default I/O window.
const (
	DefaultDialTimeout = 10 * time.Second
	DefaultIOTimeout   = 2 * time.Minute
	DefaultIdleTimeout = 10 * time.Minute
)

// Options configure a client or server endpoint.
type Options struct {
	// TLS enables encrypted communication when non-nil (the paper's SSL
	// setting).
	TLS *tls.Config
	// Netem shapes the underlying connection (LAN/WAN emulation).
	Netem netem.Config
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// IOTimeout bounds one full RPC exchange on the client and one reply
	// write on the server. Zero means DefaultIOTimeout; negative disables
	// deadlines (trusted in-process test links).
	IOTimeout time.Duration
	// IdleTimeout bounds how long a server connection may sit between
	// requests (including mid-request stalls) before it is reclaimed.
	// Zero means DefaultIdleTimeout; negative disables it.
	IdleTimeout time.Duration
}

// timeout resolves a configured duration against its default: zero picks
// the default, negative disables (returns 0).
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// rpcEnvelope is the on-wire unit: one envelope per Call.
type rpcEnvelope struct {
	Requests []Request
}

type rpcReply struct {
	Responses []Response
}

// Client is a coordinator-side connection to one federated worker. A client
// is safe for concurrent use; calls are serialized per connection (the
// coordinator parallelizes across workers, as in the paper).
//
// A transport failure (encode, flush, decode, or timeout) leaves the gob
// stream desynchronized, so the client tears the connection down and marks
// itself broken instead of silently reusing the dead stream; the next Call
// (or an explicit Redial) transparently re-establishes the transport. The
// cumulative byte counters survive reconnects.
type Client struct {
	addr      string
	opts      Options
	ioTimeout time.Duration

	mu     sync.Mutex
	conn   net.Conn // nil while broken (pre-redial) or after Close
	bw     *bufio.Writer
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool // Close was called; distinguishes closed from broken

	bytesOut atomic.Int64
	bytesIn  atomic.Int64
}

// Dial connects to a federated worker at addr.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts, ioTimeout: timeout(opts.IOTimeout, DefaultIOTimeout)}
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the transport: a fresh connection, encoder,
// and decoder — a gob stream cannot be resumed after a partial exchange, so
// both ends must restart their codecs. The cumulative byte counters carry
// over. Callers hold c.mu (or own the client exclusively, as in Dial).
func (c *Client) redialLocked() error {
	raw, err := net.DialTimeout("tcp", c.addr, timeout(c.opts.DialTimeout, DefaultDialTimeout))
	if err != nil {
		return fmt.Errorf("fedrpc: dial %s: %w", c.addr, err)
	}
	conn := netem.Wrap(raw, c.opts.Netem)
	if c.opts.TLS != nil {
		tconn := tls.Client(conn, c.opts.TLS)
		if err := tconn.Handshake(); err != nil {
			conn.Close()
			return fmt.Errorf("fedrpc: tls handshake with %s: %w", c.addr, err)
		}
		conn = tconn
	}
	c.conn = conn
	out := &countingWriter{w: conn, n: &c.bytesOut}
	in := &countingReader{r: conn, n: &c.bytesIn}
	c.bw = bufio.NewWriterSize(out, 1<<16)
	c.enc = gob.NewEncoder(c.bw)
	c.dec = gob.NewDecoder(bufio.NewReaderSize(in, 1<<16))
	return nil
}

// Addr returns the worker address this client is connected to.
func (c *Client) Addr() string { return c.addr }

// Call sends a batch of requests as a single RPC and returns one response
// per request. A transport failure returns an error; per-request failures
// are reported in the responses.
func (c *Client) Call(reqs ...Request) ([]Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("fedrpc: call to %s: %w", c.addr, ErrClosed)
	}
	if c.conn == nil {
		// Broken by an earlier transport failure: reconnect transparently.
		if err := c.redialLocked(); err != nil {
			return nil, err
		}
	}
	// Every failure exit tears the transport down (teardownLocked), which
	// both closes the conn — retiring its armed deadline with it — and
	// prevents the next Call from silently reusing a desynced gob stream.
	c.armDeadline()
	if err := c.enc.Encode(rpcEnvelope{Requests: reqs}); err != nil {
		c.teardownLocked()
		return nil, fmt.Errorf("fedrpc: send to %s: %w", c.addr, err)
	}
	if err := c.bw.Flush(); err != nil {
		c.teardownLocked()
		return nil, fmt.Errorf("fedrpc: flush to %s: %w", c.addr, err)
	}
	var reply rpcReply
	if err := c.dec.Decode(&reply); err != nil {
		c.teardownLocked()
		return nil, fmt.Errorf("fedrpc: receive from %s: %w", c.addr, err)
	}
	c.disarmDeadline()
	if len(reply.Responses) != len(reqs) {
		// The stream answered, but with the wrong cardinality: a protocol
		// desync this connection cannot recover from.
		c.teardownLocked()
		return nil, fmt.Errorf("fedrpc: %s returned %d responses for %d requests",
			c.addr, len(reply.Responses), len(reqs))
	}
	return reply.Responses, nil
}

// teardownLocked closes and discards the transport after a failed or
// desynced exchange, marking the client broken (unless Close follows). The
// armed deadline dies with the connection, so error paths need no separate
// disarm. Callers hold c.mu.
func (c *Client) teardownLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.bw, c.enc, c.dec = nil, nil, nil
}

// Broken reports whether the client currently has no live transport because
// an earlier exchange failed. The next Call (or Redial) reconnects.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn == nil && !c.closed
}

// Redial forces a fresh transport, tearing down the current connection
// first if one is live. Byte counters are preserved.
func (c *Client) Redial() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("fedrpc: redial %s: %w", c.addr, ErrClosed)
	}
	c.teardownLocked()
	return c.redialLocked()
}

// CallOne sends a single request and returns its response, converting a
// per-request failure into an error.
func (c *Client) CallOne(req Request) (Response, error) {
	resps, err := c.Call(req)
	if err != nil {
		return Response{}, err
	}
	if !resps[0].OK {
		return resps[0], fmt.Errorf("fedrpc: %s %s: %s", c.addr, req.Type, resps[0].Err)
	}
	return resps[0], nil
}

// armDeadline bounds the upcoming RPC exchange so a dead or wedged peer
// surfaces as a timeout error instead of hanging the coordinator forever.
// Callers hold c.mu.
func (c *Client) armDeadline() {
	if c.ioTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
	}
}

// disarmDeadline clears the exchange deadline so an idle connection is not
// killed between calls. Callers hold c.mu.
func (c *Client) disarmDeadline() {
	if c.ioTimeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
}

// BytesSent returns the total bytes written to this worker.
func (c *Client) BytesSent() int64 { return c.bytesOut.Load() }

// BytesReceived returns the total bytes read from this worker.
func (c *Client) BytesReceived() int64 { return c.bytesIn.Load() }

// Close terminates the connection. A closed client stays closed: unlike a
// broken one, it does not reconnect on the next Call (which then returns an
// error identifiable with errors.Is(err, ErrClosed)). Close is idempotent —
// including after a transport failure left the client Broken — and releases
// the underlying connection exactly once; repeated calls return nil.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil // already broken: the transport died with the failure
	}
	err := c.conn.Close()
	c.conn = nil
	c.bw, c.enc, c.dec = nil, nil, nil
	return err
}

type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r interface{ Read([]byte) (int, error) }
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}
