package fedrpc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"exdra/internal/matrix"
	"exdra/internal/obs"
)

func TestNamespaceIDRoundTrip(t *testing.T) {
	cases := []struct{ ns, seq int64 }{
		{0, 1}, {0, 1 << 30}, {1, 1}, {7, 42}, {MaxNamespace, 1}, {MaxNamespace, (1 << NamespaceShift) - 1},
	}
	for _, tc := range cases {
		id := MakeID(tc.ns, tc.seq)
		if id < 0 {
			t.Fatalf("MakeID(%d, %d) = %d: sign bit set", tc.ns, tc.seq, id)
		}
		if got := IDNamespace(id); got != tc.ns {
			t.Fatalf("IDNamespace(MakeID(%d, %d)) = %d", tc.ns, tc.seq, got)
		}
	}
	if MakeID(0, 5) != 5 {
		t.Fatal("namespace 0 must be the legacy unscoped ID space")
	}
	a, b := MakeID(1, 1), MakeID(2, 1)
	if a == b {
		t.Fatal("same sequence in different namespaces must not collide")
	}
}

func TestPoolCheckoutCheckin(t *testing.T) {
	s, _ := startServer(t, Options{})
	p := NewPool(s.Addr(), 2, Options{Metrics: obs.New()})
	defer p.Close()
	ctx := context.Background()

	c1, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("two concurrent checkouts returned the same client")
	}
	if st := p.Stats(); st.Conns != 2 || st.InUse != 2 || st.Idle != 0 {
		t.Fatalf("stats with both out: %+v", st)
	}

	// A third checkout must block until a checkin.
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	if _, err := p.Get(short); !errors.Is(err, context.DeadlineExceeded) {
		cancel()
		t.Fatalf("over-size checkout: got %v, want deadline", err)
	}
	cancel()

	p.Put(c1)
	c3, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c1 {
		t.Fatal("checkin did not recycle the idle client")
	}
	p.Put(c2)
	p.Put(c3)
	if st := p.Stats(); st.Conns != 2 || st.InUse != 0 || st.Idle != 2 {
		t.Fatalf("stats after all checkins: %+v", st)
	}

	// Pooled clients carry real connections.
	m := matrix.FromRows([][]float64{{1, 2}})
	cl, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CallOne(Request{Type: Put, ID: 1, Data: MatrixPayload(m)}); err != nil {
		t.Fatal(err)
	}
	p.Put(cl)
}

func TestPoolWaiterHandoff(t *testing.T) {
	s, _ := startServer(t, Options{})
	reg := obs.New()
	p := NewPool(s.Addr(), 1, Options{Metrics: reg})
	defer p.Close()
	ctx := context.Background()

	cl, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Client, 1)
	go func() {
		c, err := p.Get(ctx)
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()
	// Wait until the second checkout is queued, then check in: the client
	// must be handed straight to the waiter.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p.Put(cl)
	c2 := <-got
	if c2 != cl {
		t.Fatal("handoff delivered a different client")
	}
	if st := p.Stats(); st.InUse != 1 || st.Conns != 1 {
		t.Fatalf("stats after handoff: %+v", st)
	}
	p.Put(c2)
	if v := reg.Counter("serve.pool.waits").Value(); v != 1 {
		t.Fatalf("serve.pool.waits = %d, want 1", v)
	}
	if v := reg.Counter("serve.pool.dials").Value(); v != 1 {
		t.Fatalf("serve.pool.dials = %d, want 1", v)
	}
	if v := reg.Gauge("serve.pool.in_use").Value(); v != 0 {
		t.Fatalf("serve.pool.in_use = %d, want 0", v)
	}
}

func TestPoolCloseFailsWaitersAndCheckouts(t *testing.T) {
	s, _ := startServer(t, Options{})
	p := NewPool(s.Addr(), 1, Options{Metrics: obs.New()})
	ctx := context.Background()

	if _, err := p.Get(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Get(ctx)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiting < len(errs) {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p.Close()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("waiter %d: got %v, want ErrPoolClosed", i, err)
		}
	}
	if _, err := p.Get(ctx); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-close checkout: got %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolSharedIsStable(t *testing.T) {
	s, _ := startServer(t, Options{})
	p := NewPool(s.Addr(), 3, Options{Metrics: obs.New()})
	defer p.Close()
	ctx := context.Background()

	c1, err := p.Shared(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Shared(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("Shared must return a stable client")
	}
	if st := p.Stats(); st.InUse != 0 {
		t.Fatalf("Shared must not hold a checkout: %+v", st)
	}
	// Shared and a checkout can coexist (Client serializes its own wire).
	cl, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CallOne(Request{Type: Put, ID: 2, Data: MatrixPayload(matrix.FromRows([][]float64{{9}}))}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CallOne(Request{Type: Get, ID: 2}); err != nil {
		t.Fatal(err)
	}
	p.Put(cl)
}

func TestPoolDialErrorReleasesSlot(t *testing.T) {
	// A dead address: every dial fails, but the slot must be released each
	// time so subsequent checkouts fail fast instead of deadlocking.
	p := NewPool("127.0.0.1:1", 1, Options{DialTimeout: 200 * time.Millisecond, Metrics: obs.New()})
	defer p.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.Get(ctx); err == nil {
			t.Fatal("dial to dead address succeeded")
		}
	}
	if st := p.Stats(); st.Conns != 0 || st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("stats after failed dials: %+v", st)
	}
}

func TestServerMaxConnsRejectsWithBackoff(t *testing.T) {
	reg := obs.New()
	h := newEchoHandler()
	s, err := Serve("127.0.0.1:0", h, Options{MaxConns: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c1, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.CallOne(Request{Type: Put, ID: 1, Data: MatrixPayload(matrix.FromRows([][]float64{{1}}))}); err != nil {
		t.Fatal(err)
	}
	if v := reg.Gauge("worker.conns").Value(); v != 1 {
		t.Fatalf("worker.conns = %d, want 1", v)
	}

	// A second connection is over the cap: the server parks then drops it,
	// so the call fails instead of hanging.
	c2, err := Dial(s.Addr(), Options{IOTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.CallOne(Request{Type: Get, ID: 1}); err == nil {
		t.Fatal("over-limit connection served a call")
	}
	if v := reg.Counter("worker.conn_rejects").Value(); v == 0 {
		t.Fatal("worker.conn_rejects not incremented")
	}

	// Freeing the slot lets the next connection in.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(s.Addr(), Options{IOTimeout: 2 * time.Second})
		if err == nil {
			_, err = c3.CallOne(Request{Type: Get, ID: 1})
			c3.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
