package fedrpc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exdra/internal/obs"
)

// TestCallCloseRaceObservesErrClosed hammers Call and Redial from several
// goroutines while Close lands mid-flight. Every Call must either succeed
// (it finished before Close) or report ErrClosed — never panic on a nil
// conn, never silently redial past Close, and never surface a bare
// transport error for a close-induced interruption. Run under -race.
func TestCallCloseRaceObservesErrClosed(t *testing.T) {
	s, _ := startServer(t, Options{})
	for iter := 0; iter < 25; iter++ {
		c, err := Dial(s.Addr(), Options{Metrics: obs.New()})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var raceErr atomic.Value
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Call(Request{Type: Clear}); err != nil {
						if !errors.Is(err, ErrClosed) {
							raceErr.Store(err)
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if err := c.Redial(); err != nil && !errors.Is(err, ErrClosed) {
					raceErr.Store(err)
					return
				}
			}
		}()
		time.Sleep(time.Duration(iter%5) * time.Millisecond)
		if err := c.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		close(stop)
		wg.Wait()
		if err := raceErr.Load(); err != nil {
			t.Fatalf("iter %d: call/redial racing close got non-ErrClosed error: %v", iter, err)
		}
		if _, err := c.Call(Request{Type: Clear}); !errors.Is(err, ErrClosed) {
			t.Fatalf("iter %d: call after close = %v, want ErrClosed", iter, err)
		}
		if c.Broken() {
			t.Fatalf("iter %d: closed client reports Broken", iter)
		}
	}
}

// TestCloseDoesNotBlockOnInFlightCall pins a Call against a server that
// never replies, then closes the client: Close must return promptly (not
// wait out the 2-minute I/O deadline behind the exchange lock) and the
// interrupted Call must observe ErrClosed.
func TestCloseDoesNotBlockOnInFlightCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _, _ = io.Copy(io.Discard, c) }(conn) // swallow, never reply
		}
	}()

	// ForceGob: the swallow-server never acks a framing handshake, and
	// this test pins Close promptness, not the wire format.
	c, err := Dial(ln.Addr().String(), Options{Metrics: obs.New(), ForceGob: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(Request{Type: Health})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the call block on the reply

	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close blocked %v behind the in-flight call", d)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("interrupted call = %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("call did not return after Close")
	}
}

// TestClientMetricsAndSpans verifies one round trip populates the client
// and server registries: per-type request counters, byte totals, the five
// phase histograms, the per-type latency histogram, and the span ring.
func TestClientMetricsAndSpans(t *testing.T) {
	creg, sreg := obs.New(), obs.New()
	s, _ := startServer(t, Options{Metrics: sreg})
	c, err := Dial(s.Addr(), Options{Metrics: creg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sp := &obs.Span{}
	ctx := obs.WithSpan(obs.WithOp(context.Background(), "test-op"), sp)
	if _, err := c.CallCtx(ctx, Request{Type: Clear}, Request{Type: Clear}); err != nil {
		t.Fatal(err)
	}

	snap := creg.Snapshot()
	if snap.Counters["rpc.client.calls"] != 1 {
		t.Fatalf("calls = %d, want 1", snap.Counters["rpc.client.calls"])
	}
	if snap.Counters["rpc.client.requests.CLEAR"] != 2 {
		t.Fatalf("requests.CLEAR = %d, want 2", snap.Counters["rpc.client.requests.CLEAR"])
	}
	if snap.Counters["rpc.client.bytes_out"] <= 0 || snap.Counters["rpc.client.bytes_in"] <= 0 {
		t.Fatalf("byte counters not recorded: %v", snap.Counters)
	}
	for _, h := range []string{"queue", "encode", "network", "execute", "decode"} {
		if snap.Histograms["rpc.client.phase."+h].Count != 1 {
			t.Fatalf("phase histogram %s count = %d, want 1", h, snap.Histograms["rpc.client.phase."+h].Count)
		}
	}
	if snap.Histograms["rpc.client.call_seconds.CLEAR"].Count != 1 {
		t.Fatal("per-type latency histogram not observed")
	}

	if sp.Op != "test-op" || sp.Addr != s.Addr() || sp.Batch != 2 || sp.ReqType != "CLEAR" {
		t.Fatalf("span not populated: %+v", sp)
	}
	if sp.Total <= 0 || sp.BytesOut <= 0 || sp.BytesIn <= 0 {
		t.Fatalf("span timings/bytes not populated: %+v", sp)
	}
	spans := creg.Spans()
	if len(spans) != 1 || spans[0].ReqType != "CLEAR" {
		t.Fatalf("span ring = %+v, want one CLEAR span", spans)
	}

	ssnap := sreg.Snapshot()
	if ssnap.Counters["rpc.server.requests.CLEAR"] != 2 || ssnap.Counters["rpc.server.batches"] != 1 {
		t.Fatalf("server counters = %v", ssnap.Counters)
	}
	if ssnap.Histograms["rpc.server.execute_seconds"].Count != 1 {
		t.Fatal("server execute histogram not observed")
	}
}

// TestErrorsCountedInMetrics verifies a transport failure increments the
// error counter and records an errored span.
func TestErrorsCountedInMetrics(t *testing.T) {
	reg := obs.New()
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(Request{Type: Clear}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["rpc.client.errors"] != 1 {
		t.Fatalf("errors = %d, want 1", snap.Counters["rpc.client.errors"])
	}
	spans := reg.Spans()
	if len(spans) != 1 || spans[0].Err == "" {
		t.Fatalf("errored span not recorded: %+v", spans)
	}
}

// TestSlowRPCLogged verifies the slow-call threshold emits the structured
// log line and bumps the counter.
func TestSlowRPCLogged(t *testing.T) {
	reg := obs.New()
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{Metrics: reg, SlowRPC: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	if _, err := c.Call(Request{Type: Clear}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("rpc.client.slow_calls").Value() != 1 {
		t.Fatalf("slow_calls = %d, want 1", reg.Counter("rpc.client.slow_calls").Value())
	}
	line := buf.String()
	for _, want := range []string{"slow rpc", "threshold=", "type=CLEAR", "total=", "queue="} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-rpc log missing %q: %s", want, line)
		}
	}
}

// ctxProbeHandler implements both Handler and ContextHandler; the server
// must prefer the context-aware path.
type ctxProbeHandler struct {
	viaCtx   atomic.Bool
	viaPlain atomic.Bool
	ctxOK    atomic.Bool
}

func (h *ctxProbeHandler) Handle(reqs []Request) []Response {
	h.viaPlain.Store(true)
	return make([]Response, len(reqs))
}

func (h *ctxProbeHandler) HandleContext(ctx context.Context, reqs []Request) []Response {
	h.viaCtx.Store(true)
	h.ctxOK.Store(ctx.Err() == nil)
	out := make([]Response, len(reqs))
	for i := range out {
		out[i] = Response{OK: true}
	}
	return out
}

func TestServerPrefersContextHandler(t *testing.T) {
	h := &ctxProbeHandler{}
	s, err := Serve("127.0.0.1:0", h, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(Request{Type: Health}); err != nil {
		t.Fatal(err)
	}
	if !h.viaCtx.Load() || h.viaPlain.Load() {
		t.Fatalf("handler dispatch: ctx=%v plain=%v, want ctx only", h.viaCtx.Load(), h.viaPlain.Load())
	}
	if !h.ctxOK.Load() {
		t.Fatal("handler context was already canceled during handling")
	}
}
