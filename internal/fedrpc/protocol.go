// Package fedrpc implements the federation protocol of ExDRa §4.1: exactly
// six generic request types (READ, PUT, GET, EXEC_INST, EXEC_UDF, CLEAR)
// exchanged between a coordinator and standing federated workers. A single
// RPC carries a sequence of requests and returns one response per request;
// the coordinator issues RPCs to all workers in parallel. Transport is TCP
// with a negotiated encoding — binary framing (gob control envelope + raw
// float64 slabs, see wire.go) between current peers, pure gob with older
// ones — optionally TLS-encrypted (the paper's SSL setting) and optionally
// shaped by package netem for WAN experiments.
package fedrpc

import (
	"context"
	"fmt"

	"exdra/internal/frame"
	"exdra/internal/matrix"
)

// RequestType enumerates the six federation request types of the paper.
type RequestType int

// The six federated request types (ExDRa §4.1).
const (
	// Read creates a data object from a filename at the worker, reads it,
	// and adds it by ID to the symbol table.
	Read RequestType = iota
	// Put receives a transferred data object and adds it by ID to the
	// worker's symbol table.
	Put
	// Get obtains a data object from the worker's symbol table and returns
	// it to the coordinator (subject to privacy constraints).
	Get
	// ExecInst executes an instruction that accesses inputs and outputs by
	// ID in the symbol table.
	ExecInst
	// ExecUDF executes a named user-defined function over requested inputs
	// by ID, may add outputs to the symbol table, and returns a custom
	// payload to the coordinator.
	ExecUDF
	// Clear cleans up execution contexts and variables.
	Clear
	// Health is a lightweight liveness ping. It touches no symbol-table
	// state; its only job is to elicit a response — and with it the
	// worker's instance epoch, so a coordinator can tell "same address,
	// new process" apart from a flaky connection (restart detection).
	// Health extends the paper's six request types; it is the one
	// addition the failure model of DESIGN.md §3.5 requires.
	Health
)

// String returns the protocol name of the request type.
func (t RequestType) String() string {
	names := [...]string{"READ", "PUT", "GET", "EXEC_INST", "EXEC_UDF", "CLEAR", "HEALTH"}
	if int(t) >= 0 && int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("RequestType(%d)", int(t))
}

// Instruction is a runtime instruction shipped via EXEC_INST. Opcode names
// follow DML conventions (e.g. "mm", "tsmm", "uar_sum", "+", "t").
type Instruction struct {
	Opcode  string
	Inputs  []int64
	Output  int64
	Scalars []float64
	Attrs   map[string]string
}

// UDFCall invokes a registered user-defined function via EXEC_UDF. Because
// Go cannot serialize closures, functions are registered by name in a shared
// registry linked into both coordinator and worker (see DESIGN.md,
// substitutions); Args carries the gob-encoded argument payload.
type UDFCall struct {
	Name   string
	Inputs []int64
	Output int64
	Args   []byte
}

// Request is one federated request. Exactly the fields relevant to Type are
// populated.
type Request struct {
	Type     RequestType
	ID       int64  // target symbol-table ID (READ, PUT, GET)
	Filename string // READ
	Privacy  int    // READ, PUT: coarse privacy.Level for the created object
	// ColPrivacy optionally assigns fine-grained per-column constraints
	// (privacy.Level values, one per column) on READ/PUT; columns beyond
	// the slice default to the coarse level.
	ColPrivacy []int
	Data       Payload // PUT
	Inst       *Instruction
	UDF        *UDFCall
}

// Response codes classify failures beyond the human-readable Err string.
// Old peers never set Code (gob zero-fills missing fields), so zero must
// always mean "no machine-readable class" — matching their behavior.
const (
	// CodeNone is the zero value: no failure class attached.
	CodeNone = 0
	// CodeDeadlineExceeded marks a request abandoned because the call
	// budget carried on the wire expired before (or while) it executed.
	// Coordinators must not retry the batch on this attempt: the budget is
	// spent, and re-sending would double the caller's wait.
	CodeDeadlineExceeded = 1
)

// ErrDeadlineExceeded is the client-side form of CodeDeadlineExceeded: the
// call's time budget ran out, either locally (the context expired before or
// during the exchange) or remotely (the worker replied with the typed
// code). It wraps context.DeadlineExceeded so errors.Is works with either
// sentinel.
var ErrDeadlineExceeded = fmt.Errorf("fedrpc: DEADLINE_EXCEEDED: %w", context.DeadlineExceeded)

// Response answers one request. Err is empty on success.
type Response struct {
	OK   bool
	Err  string
	Code int     // failure class (Code* constants); 0 when unclassified
	Data Payload // GET and EXEC_UDF results
	// Epoch is the responding worker process's instance epoch: a random
	// nonzero value generated once at process startup and stamped on every
	// response. A coordinator that sees the epoch change under a known
	// address knows the worker process restarted — its symbol table is
	// empty — as opposed to a mere transport failure. Zero means the
	// handler does not stamp epochs.
	Epoch uint64
}

// Errorf builds a failed response.
func Errorf(format string, args ...any) Response {
	return Response{Err: fmt.Sprintf(format, args...)}
}

// ResponseError converts a failed response into the caller-facing error,
// mapping known response codes onto their typed sentinels: a worker-reported
// CodeDeadlineExceeded satisfies errors.Is(err, ErrDeadlineExceeded) exactly
// like a local budget expiry, so retry and breaker verdicts cannot diverge
// between the transport-error and typed-reply paths. Unclassified failures
// keep the plain "addr type: message" form.
func ResponseError(addr string, t RequestType, resp Response) error {
	if resp.Code == CodeDeadlineExceeded {
		return fmt.Errorf("fedrpc: %s %s: %w: %s", addr, t, ErrDeadlineExceeded, resp.Err)
	}
	return fmt.Errorf("fedrpc: %s %s: %s", addr, t, resp.Err)
}

// PayloadKind discriminates payload contents.
type PayloadKind int

// Payload kinds.
const (
	PayloadNone PayloadKind = iota
	PayloadMatrix
	PayloadFrame
	PayloadScalar
	PayloadBytes
)

// Payload is a transferable data object. Matrices travel as shape plus the
// raw row-major values; frames as their typed columns.
type Payload struct {
	Kind   PayloadKind
	Rows   int
	Cols   int
	Values []float64
	Frame  []*frame.Column
	Scalar float64
	Bytes  []byte
}

// MatrixPayload wraps a dense matrix for transfer. The payload aliases m's
// backing array — no copy — so the caller must guarantee m is not mutated
// until the payload has been fully serialized (for a coordinator: until
// Call returns). When the matrix can be mutated concurrently (e.g. a GET
// reply serialized after the worker lock is released), use
// MatrixPayloadCopy instead.
func MatrixPayload(m *matrix.Dense) Payload {
	return Payload{Kind: PayloadMatrix, Rows: m.Rows(), Cols: m.Cols(), Values: m.Data()}
}

// MatrixPayloadCopy wraps a dense matrix for transfer, snapshotting its
// backing array. Use it when the matrix may be mutated between payload
// construction and serialization; the copy must happen while the caller
// still holds whatever lock guards the matrix.
func MatrixPayloadCopy(m *matrix.Dense) Payload {
	vals := make([]float64, len(m.Data()))
	copy(vals, m.Data())
	return Payload{Kind: PayloadMatrix, Rows: m.Rows(), Cols: m.Cols(), Values: vals}
}

// Matrix reconstructs the transferred matrix, or nil for non-matrix payloads.
func (p Payload) Matrix() *matrix.Dense {
	if p.Kind != PayloadMatrix {
		return nil
	}
	return matrix.NewDenseData(p.Rows, p.Cols, p.Values)
}

// FramePayload wraps a frame for transfer.
func FramePayload(f *frame.Frame) Payload {
	cols := make([]*frame.Column, f.NumCols())
	for j := range cols {
		cols[j] = f.Column(j)
	}
	return Payload{Kind: PayloadFrame, Rows: f.NumRows(), Cols: f.NumCols(), Frame: cols}
}

// ToFrame reconstructs the transferred frame.
func (p Payload) ToFrame() (*frame.Frame, error) {
	if p.Kind != PayloadFrame {
		return nil, fmt.Errorf("fedrpc: payload is not a frame")
	}
	return frame.New(p.Frame...)
}

// ScalarPayload wraps a scalar for transfer.
func ScalarPayload(v float64) Payload { return Payload{Kind: PayloadScalar, Scalar: v} }

// BytesPayload wraps opaque bytes (e.g. gob-encoded UDF results).
func BytesPayload(b []byte) Payload { return Payload{Kind: PayloadBytes, Bytes: b} }
