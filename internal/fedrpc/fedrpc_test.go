package fedrpc

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/netem"
)

// echoHandler stores PUT payloads and returns them on GET.
type echoHandler struct {
	mu    sync.Mutex
	store map[int64]Payload
}

func newEchoHandler() *echoHandler { return &echoHandler{store: map[int64]Payload{}} }

func (h *echoHandler) Handle(reqs []Request) []Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Response, len(reqs))
	for i, r := range reqs {
		switch r.Type {
		case Put:
			h.store[r.ID] = r.Data
			out[i] = Response{OK: true}
		case Get:
			p, ok := h.store[r.ID]
			if !ok {
				out[i] = Errorf("no object %d", r.ID)
				continue
			}
			out[i] = Response{OK: true, Data: p}
		case Clear:
			h.store = map[int64]Payload{}
			out[i] = Response{OK: true}
		default:
			out[i] = Errorf("unsupported %s", r.Type)
		}
	}
	return out
}

func startServer(t *testing.T, opts Options) (*Server, *echoHandler) {
	t.Helper()
	h := newEchoHandler()
	s, err := Serve("127.0.0.1:0", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, h
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := c.CallOne(Request{Type: Put, ID: 7, Data: MatrixPayload(m)}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.CallOne(Request{Type: Get, ID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Data.Matrix().EqualApprox(m, 0) {
		t.Fatal("matrix round trip")
	}
}

func TestFramePayloadRoundTrip(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f := frame.MustNew(
		frame.StringColumn("A", []string{"x", "", "z"}),
		frame.FloatColumn("B", []float64{1, 2, 3}),
	)
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: FramePayload(f)}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.CallOne(Request{Type: Get, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resp.Data.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 || got.Column(0).AsString(2) != "z" || !got.Column(0).IsNA(1) {
		t.Fatal("frame round trip")
	}
}

func TestBatchedRequestsOneRPC(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resps, err := c.Call(
		Request{Type: Put, ID: 1, Data: ScalarPayload(5)},
		Request{Type: Get, ID: 1},
		Request{Type: Get, ID: 99}, // fails, but batch continues
		Request{Type: Get, ID: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].OK || !resps[1].OK || resps[2].OK || !resps[3].OK {
		t.Fatalf("batch semantics: %+v", resps)
	}
	if resps[1].Data.Scalar != 5 {
		t.Fatal("scalar payload")
	}
}

func TestPerRequestErrorViaCallOne(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.CallOne(Request{Type: Get, ID: 404})
	if err == nil || !strings.Contains(err.Error(), "no object") {
		t.Fatalf("want per-request error, got %v", err)
	}
}

func TestTLSEncryptedChannel(t *testing.T) {
	srvTLS, cliTLS, err := NewSelfSignedTLS()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := startServer(t, Options{TLS: srvTLS})
	c, err := Dial(s.Addr(), Options{TLS: cliTLS})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := matrix.Fill(4, 4, 2)
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: MatrixPayload(m)}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.CallOne(Request{Type: Get, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Data.Matrix().EqualApprox(m, 0) {
		t.Fatal("TLS round trip")
	}
	// A plaintext client must not be able to talk to a TLS server.
	plain, err := Dial(s.Addr(), Options{})
	if err == nil {
		if _, err := plain.Call(Request{Type: Get, ID: 1}); err == nil {
			t.Fatal("plaintext client succeeded against TLS server")
		}
		plain.Close()
	}
}

func TestWANEmulationAddsLatency(t *testing.T) {
	wan := netem.Config{RTT: 30 * time.Millisecond}
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{Netem: wan})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The dial-time framing handshake and the call below must land in
	// separate message bursts (netem charges RTT once per burst), so let
	// the burst gap elapse before measuring.
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: ScalarPayload(1)}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("WAN RTT not applied: call took %v", d)
	}
	// LAN for comparison.
	lan, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lan.Close()
	start = time.Now()
	if _, err := lan.CallOne(Request{Type: Put, ID: 2, Data: ScalarPayload(1)}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Logf("LAN call unexpectedly slow: %v", d)
	}
}

func TestByteCounters(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(1))
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: MatrixPayload(matrix.Randn(rng, 100, 100, 0, 1))}); err != nil {
		t.Fatal(err)
	}
	// gob encodes float64 values compactly, but random values need close to
	// the full 8 bytes each.
	if c.BytesSent() < 8*100*100*3/4 {
		t.Fatalf("bytes sent %d, want at least ~the matrix payload", c.BytesSent())
	}
	if c.BytesReceived() == 0 {
		t.Fatal("no bytes received")
	}
}

func TestClosedClientErrors(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call(Request{Type: Get, ID: 1}); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestServerSurvivesHandlerPanic(t *testing.T) {
	h := HandlerFunc(func(reqs []Request) []Response { panic("boom") })
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resps, err := c.Call(Request{Type: Get, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].OK || !strings.Contains(resps[0].Err, "panic") {
		t.Fatalf("panic not converted to error: %+v", resps[0])
	}
	// The connection must still work afterwards.
	if _, err := c.Call(Request{Type: Get, ID: 2}); err != nil {
		t.Fatal("connection dead after panic")
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _ := startServer(t, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				id := int64(g*100 + i)
				if _, err := c.CallOne(Request{Type: Put, ID: id, Data: ScalarPayload(float64(id))}); err != nil {
					t.Error(err)
					return
				}
				resp, err := c.CallOne(Request{Type: Get, ID: id})
				if err != nil || resp.Data.Scalar != float64(id) {
					t.Errorf("get %d: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRequestTypeString(t *testing.T) {
	if Read.String() != "READ" || ExecUDF.String() != "EXEC_UDF" || Clear.String() != "CLEAR" {
		t.Fatal("request type names")
	}
}

// TestIOTimeoutUnblocksSilentPeer proves the liveness invariant behind the
// netdeadline lint rule: a peer that accepts the connection but never
// replies must not hang the caller forever — the armed deadline errors the
// RPC out.
func TestIOTimeoutUnblocksSilentPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Drain the request but never answer.
		buf := make([]byte, 1<<16)
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	// ForceGob: the mute peer above never acks a framing handshake, and
	// this test pins the exchange deadline, not the wire format.
	c, err := Dial(ln.Addr().String(), Options{IOTimeout: 100 * time.Millisecond, ForceGob: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(Request{Type: Clear})
	if err == nil {
		t.Fatal("Call against a silent peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline did not bound the call: blocked %v", elapsed)
	}
	ln.Close()
	<-done
}

// TestServerIdleTimeoutReclaimsConnection proves the server side: a client
// that connects and goes quiet is reclaimed after IdleTimeout, so stuck
// coordinators cannot pin worker goroutines.
func TestServerIdleTimeoutReclaimsConnection(t *testing.T) {
	s, _ := startServer(t, Options{IdleTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server's read deadline should close the conn.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to close the idle connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle connection survived %v", elapsed)
	}
}

// TestTimeoutThenCleanCall is the regression test for the broken-connection
// seed bug: after a timed-out exchange the client used to keep the dead
// conn and desync the gob stream, so the *next* Call failed confusingly (or
// read the stale late reply). Now the failed exchange tears the transport
// down and the next Call reconnects and succeeds cleanly.
func TestTimeoutThenCleanCall(t *testing.T) {
	var slow atomic.Bool
	slow.Store(true)
	h := HandlerFunc(func(reqs []Request) []Response {
		if slow.Load() {
			time.Sleep(600 * time.Millisecond) // outlives the client deadline
		}
		out := make([]Response, len(reqs))
		for i := range out {
			out[i] = Response{OK: true, Data: ScalarPayload(42)}
		}
		return out
	})
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), Options{IOTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(Request{Type: Get, ID: 1}); err == nil {
		t.Fatal("slow exchange did not time out")
	}
	if !c.Broken() {
		t.Fatal("timed-out client not marked broken")
	}
	slow.Store(false)
	resps, err := c.Call(Request{Type: Get, ID: 1})
	if err != nil {
		t.Fatalf("call after timeout not clean: %v", err)
	}
	if !resps[0].OK || resps[0].Data.Scalar != 42 {
		t.Fatalf("reconnected call got desynced reply: %+v", resps[0])
	}
	if c.Broken() {
		t.Fatal("client still broken after successful reconnect")
	}
}

// TestRedialPreservesByteCounters proves the cumulative transfer accounting
// (the paper's communication measurements) survives reconnects.
func TestRedialPreservesByteCounters(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: ScalarPayload(1)}); err != nil {
		t.Fatal(err)
	}
	sent, recv := c.BytesSent(), c.BytesReceived()
	if sent == 0 || recv == 0 {
		t.Fatal("no traffic before redial")
	}
	if err := c.Redial(); err != nil {
		t.Fatal(err)
	}
	if c.BytesSent() != sent || c.BytesReceived() != recv {
		t.Fatalf("counters reset by redial: %d/%d -> %d/%d",
			sent, recv, c.BytesSent(), c.BytesReceived())
	}
	if _, err := c.CallOne(Request{Type: Get, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if c.BytesSent() <= sent || c.BytesReceived() <= recv {
		t.Fatal("counters not accumulating after redial")
	}
}

// TestCallRecoversFromInjectedReset drives the full fault path: netem kills
// the connection mid-exchange, the client marks itself broken, and the next
// Call reconnects and completes.
func TestCallRecoversFromInjectedReset(t *testing.T) {
	s, _ := startServer(t, Options{})
	faults := netem.NewFaults(netem.FaultConfig{Seed: 3, ConnResets: 1, ResetAfterBytes: 256})
	c, err := Dial(s.Addr(), Options{Netem: netem.Config{Faults: faults}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := MatrixPayload(matrix.Fill(16, 16, 1)) // ~2 KB: crosses the threshold
	_, err = c.Call(Request{Type: Put, ID: 1, Data: payload})
	if err == nil {
		t.Fatal("injected reset did not surface")
	}
	if !errors.Is(err, netem.ErrInjectedReset) {
		t.Fatalf("unexpected error: %v", err)
	}
	if !c.Broken() {
		t.Fatal("client not broken after injected reset")
	}
	if _, err := c.CallOne(Request{Type: Put, ID: 1, Data: payload}); err != nil {
		t.Fatalf("retry after reset failed: %v", err)
	}
	if got, err := c.CallOne(Request{Type: Get, ID: 1}); err != nil || got.Data.Matrix() == nil {
		t.Fatalf("object lost across reconnect: %v", err)
	}
	if faults.Stats().Resets != 1 {
		t.Fatalf("faults injected %d resets, want 1", faults.Stats().Resets)
	}
}

// TestClosedClientDoesNotRedial: Close is final; only broken clients
// reconnect.
func TestClosedClientDoesNotRedial(t *testing.T) {
	s, _ := startServer(t, Options{})
	c, err := Dial(s.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if c.Broken() {
		t.Fatal("closed client reported broken")
	}
	if _, err := c.Call(Request{Type: Get, ID: 1}); err == nil {
		t.Fatal("closed client reconnected")
	}
	if err := c.Redial(); err == nil {
		t.Fatal("Redial on closed client succeeded")
	}
}
