package fedrpc

import (
	"bytes"
	"encoding/gob"
	"testing"

	"exdra/internal/matrix"
)

// encodeBatch renders a request batch in the binary-v1 wire form (gob
// control envelope + raw slabs) for the fuzz seed corpus.
func encodeBatch(t interface{ Fatal(...any) }, reqs []Request, deadlineNanos int64, tag uint64) []byte {
	var buf bytes.Buffer
	if err := writeBatch(gob.NewEncoder(&buf), &buf, reqs, deadlineNanos, tag); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeReply renders a response batch in the binary-v1 wire form.
func encodeReply(t interface{ Fatal(...any) }, resps []Response, tag uint64) []byte {
	var buf bytes.Buffer
	if err := writeReply(gob.NewEncoder(&buf), &buf, resps, 42, tag); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWireEnvelope drives the server-side decode path (readBatch) with
// arbitrary bytes: forged slab lengths, truncated slabs, corrupt
// descriptors, and flipped checksum bits must all surface as errors —
// never a panic, a hang, or an allocation sized by an attacker-controlled
// length field alone.
func FuzzWireEnvelope(f *testing.F) {
	m := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	f.Add(encodeBatch(f, []Request{{Type: Health}}, 0, 0))
	f.Add(encodeBatch(f, []Request{
		{Type: Put, ID: 7, Data: MatrixPayload(m)},
		{Type: Get, ID: 7},
	}, int64(5e9), 1))
	f.Add(encodeBatch(f, []Request{{Type: ExecInst, Inst: &Instruction{
		Opcode: "rmvar", Inputs: []int64{1, 2, 3},
	}}}, 1, ^uint64(0)))
	// A hand-forged mutation seed: valid envelope with its tail cut off.
	full := encodeBatch(f, []Request{{Type: Put, ID: 9, Data: MatrixPayload(m)}}, 0, 12)
	f.Add(full[:len(full)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		reqs, deadline, _, err := readBatch(gob.NewDecoder(r), r)
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		// Accepted batches must be internally consistent enough to hand to
		// a handler.
		if deadline < 0 {
			t.Fatalf("decoded a negative deadline %d from accepted input", deadline)
		}
		for i, req := range reqs {
			if req.Data.Rows < 0 || req.Data.Cols < 0 {
				t.Fatalf("request %d decoded negative shape %dx%d", i, req.Data.Rows, req.Data.Cols)
			}
		}
	})
}

// FuzzWireReply drives the client-side decode path (readReply) with
// arbitrary bytes under the same contract: error, never panic, never an
// unbounded allocation.
func FuzzWireReply(f *testing.F) {
	m := matrix.FromRows([][]float64{{1.5, -2.5}, {3.25, 0}})
	f.Add(encodeReply(f, []Response{{OK: true}}, 0))
	f.Add(encodeReply(f, []Response{
		{OK: true, Data: MatrixPayload(m), Epoch: 3},
		{Err: "deadline exceeded", Code: CodeDeadlineExceeded},
	}, 7))
	f.Add(encodeReply(f, []Response{{OK: true}}, ^uint64(0)))
	full := encodeReply(f, []Response{{OK: true, Data: MatrixPayload(m)}}, 9999)
	f.Add(full[:len(full)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		rep, err := readReply(gob.NewDecoder(r), r)
		if err != nil {
			return
		}
		for i, resp := range rep.Responses {
			if resp.Data.Rows < 0 || resp.Data.Cols < 0 {
				t.Fatalf("response %d decoded negative shape %dx%d", i, resp.Data.Rows, resp.Data.Cols)
			}
		}
	})
}
