package fedrpc

import (
	"bufio"
	"context"
	"crypto/tls"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/netem"
	"exdra/internal/obs"
)

// Handler processes a batch of federated requests from one RPC. A federated
// worker implements this (package worker).
type Handler interface {
	Handle(reqs []Request) []Response
}

// ContextHandler is an optional extension: a handler that also accepts a
// context scoped to the server's lifetime (canceled on Server.Close), so a
// long batch can abandon remaining requests when the worker shuts down.
// The server prefers HandleContext when the handler implements it.
type ContextHandler interface {
	HandleContext(ctx context.Context, reqs []Request) []Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(reqs []Request) []Response

// Handle calls f.
func (f HandlerFunc) Handle(reqs []Request) []Response { return f(reqs) }

// Server accepts coordinator connections and dispatches request batches to
// a handler. Multiple coordinator connections are served concurrently; the
// handler must be safe for concurrent use.
type Server struct {
	ln          net.Listener
	handler     Handler
	ioTimeout   time.Duration
	idleTimeout time.Duration
	forceGob    bool
	maxConns    int
	reg         *obs.Registry
	cancel      context.CancelFunc
	baseCtx     context.Context

	mu     sync.Mutex
	closed bool                  // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	wg     sync.WaitGroup
}

// Serve listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine until Close.
func Serve(addr string, h Handler, opts Options) (*Server, error) {
	raw, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fedrpc: listen %s: %w", addr, err)
	}
	ln := netem.WrapListener(raw, opts.Netem)
	if opts.TLS != nil {
		ln = tls.NewListener(ln, opts.TLS)
	}
	s := &Server{
		ln:          ln,
		handler:     h,
		ioTimeout:   timeout(opts.IOTimeout, DefaultIOTimeout),
		idleTimeout: timeout(opts.IdleTimeout, DefaultIdleTimeout),
		forceGob:    opts.ForceGob,
		maxConns:    opts.MaxConns,
		reg:         opts.metrics(),
		conns:       map[net.Conn]struct{}{},
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Port returns the bound TCP port.
func (s *Server) Port() int { return s.ln.Addr().(*net.TCPAddr).Port }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			s.reg.Counter("worker.conn_rejects").Inc()
			s.wg.Add(1)
			go s.rejectConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.reg.Gauge("worker.conns").Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// rejectDelay is how long an over-limit connection is parked before it is
// closed. The pause is the "backoff" half of reject-with-backoff: a client
// retrying in a tight loop is paced at one attempt per delay instead of
// spinning the accept loop.
const rejectDelay = 100 * time.Millisecond

// rejectConn disposes of a connection accepted beyond MaxConns: hold it for
// rejectDelay (or until the server closes), then drop it without a byte.
// The client sees a dead stream and applies its own retry policy.
func (s *Server) rejectConn(conn net.Conn) {
	defer s.wg.Done()
	t := time.NewTimer(rejectDelay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.baseCtx.Done():
	}
	conn.Close()
}

// serverInflightWindow caps concurrently executing batches per connection.
// It backstops a runaway pipelining client: past the cap the read loop stops
// pulling envelopes off the wire, so backpressure reaches the sender through
// TCP flow control rather than unbounded handler goroutines.
const serverInflightWindow = 64

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.reg.Gauge("worker.conns").Add(-1)
	}()
	// Registered after the cleanup defer, so it runs first (LIFO): every
	// in-flight tagged batch finishes and flushes its reply before the
	// connection closes, even when the read side exits on EOF.
	var hwg sync.WaitGroup
	defer hwg.Wait()
	bw := bufio.NewWriterSize(conn, 1<<16)
	br := bufio.NewReaderSize(conn, 1<<16)

	// Format sniff: a current client opens the stream with the 5-byte
	// framing prelude, whose 0x00 lead byte can never begin a gob message,
	// so one peeked byte distinguishes the formats without consuming
	// anything from a legacy peer's stream. ForceGob skips the sniff
	// entirely, behaving exactly like a pre-framing build (the client's
	// prelude then desyncs the gob decoder below and the connection dies,
	// which is precisely the legacy behavior clients fall back from).
	useBinary := false
	if !s.forceGob {
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		lead, err := br.Peek(1)
		if err != nil {
			return // peer vanished before the first byte; nothing to log
		}
		if lead[0] == wirePrelude[0] {
			if s.ioTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
			}
			if err := serverHandshake(br, bw); err != nil {
				log.Printf("fedrpc: handshake from %s: %v", conn.RemoteAddr(), err)
				return
			}
			useBinary = true
		}
	}

	enc := gob.NewEncoder(bw)
	dec := gob.NewDecoder(br)

	// Replies from concurrently executing tagged batches are written one at
	// a time under a write token (a channel, not a mutex: gob encoding can
	// block on the network and must never happen under a lock). wfail
	// poisons the connection after the first write failure so later replies
	// don't log a cascade against a stream already known dead.
	wtok := make(chan struct{}, 1)
	var wfail atomic.Bool
	writeOne := func(resps []Response, elapsed time.Duration, tag uint64) {
		wtok <- struct{}{}
		defer func() { <-wtok }()
		if wfail.Load() {
			return
		}
		if s.ioTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
		}
		var werr error
		if useBinary {
			werr = writeReply(enc, bw, resps, int64(elapsed), tag)
		} else {
			werr = enc.Encode(rpcReply{Responses: resps, ExecNanos: int64(elapsed), Tag: tag})
		}
		if werr != nil {
			log.Printf("fedrpc: encode to %s: %v", conn.RemoteAddr(), werr)
		} else if ferr := bw.Flush(); ferr != nil {
			// A reply lost mid-write must leave a server-side trace, same
			// as an encode failure: the client only sees a dead stream.
			log.Printf("fedrpc: flush to %s: %v", conn.RemoteAddr(), ferr)
		} else {
			return
		}
		// A partial reply desyncs the stream for every batch on it: poison
		// the writer and close the connection to unblock the read loop.
		wfail.Store(true)
		conn.Close()
	}

	// sem bounds concurrently executing tagged batches (see
	// serverInflightWindow); untagged batches run inline, preserving the
	// strict read-execute-reply lock-step a legacy peer expects.
	sem := make(chan struct{}, serverInflightWindow)
	for {
		// The read deadline doubles as the idle bound: a coordinator that
		// vanished mid-request or stopped talking entirely releases this
		// goroutine and its symbol-table references instead of pinning them
		// forever.
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		var reqs []Request
		var deadlineNanos int64
		var tag uint64
		var rerr error
		if useBinary {
			reqs, deadlineNanos, tag, rerr = readBatch(dec, br)
		} else {
			var env rpcEnvelope
			rerr = dec.Decode(&env)
			reqs = env.Requests
			deadlineNanos = env.DeadlineNanos
			tag = env.Tag
		}
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) && !errors.Is(rerr, net.ErrClosed) {
				log.Printf("fedrpc: decode from %s: %v", conn.RemoteAddr(), rerr)
			}
			return
		}
		if wfail.Load() {
			return
		}
		if tag == 0 {
			// Untagged: a lock-step peer. Execute inline and reply before
			// reading the next envelope, exactly as the legacy server did.
			start := time.Now()
			resps := s.handleBatch(reqs, deadlineNanos)
			elapsed := time.Since(start)
			s.observe(reqs, elapsed)
			writeOne(resps, elapsed, 0)
			if wfail.Load() {
				return
			}
			continue
		}
		// Tagged: execute concurrently; the reply carries the echoed tag so
		// the client routes it regardless of completion order.
		sem <- struct{}{}
		hwg.Add(1)
		go func(reqs []Request, deadlineNanos int64, tag uint64) {
			defer hwg.Done()
			defer func() { <-sem }()
			start := time.Now()
			resps := s.handleBatch(reqs, deadlineNanos)
			elapsed := time.Since(start)
			s.observe(reqs, elapsed)
			writeOne(resps, elapsed, tag)
		}(reqs, deadlineNanos, tag)
	}
}

// handleBatch runs one request batch under the deadline the client put on
// the wire (deadlineNanos, relative; 0 = none — every pre-deadline peer).
//
// With a deadline, the handler runs in its own goroutine so the reply can
// be written the moment the budget expires: the client is waiting with a
// budget-plus-grace I/O deadline of its own, and a typed reply that beats
// that window keeps the connection (and its negotiated format) alive
// instead of forcing a teardown-and-redial. A context-aware handler
// (package worker) usually notices the expiry itself and returns typed
// responses first; the select here is the backstop for a kernel too deep
// in compute to check. The abandoned goroutine finishes its current op,
// sends into the buffered channel, and exits — its late result is simply
// discarded.
func (s *Server) handleBatch(reqs []Request, deadlineNanos int64) []Response {
	if deadlineNanos <= 0 {
		return s.safeHandle(s.baseCtx, reqs)
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, time.Duration(deadlineNanos))
	defer cancel()
	done := make(chan []Response, 1)
	go func() { done <- s.safeHandle(ctx, reqs) }()
	select {
	case resps := <-done:
		return resps
	case <-ctx.Done():
		if context.Cause(ctx) != context.DeadlineExceeded {
			// Server shutdown, not budget expiry: let the handler observe
			// the cancellation and produce its own shutdown responses.
			return <-done
		}
		resps := make([]Response, len(reqs))
		for i := range resps {
			resps[i] = Response{
				Err:  fmt.Sprintf("deadline exceeded after %s", time.Duration(deadlineNanos)),
				Code: CodeDeadlineExceeded,
			}
		}
		return resps
	}
}

// safeHandle converts handler panics into error responses so a malformed
// instruction cannot take down a standing worker. Context-aware handlers
// get ctx; plain handlers are called as before.
func (s *Server) safeHandle(ctx context.Context, reqs []Request) (resps []Response) {
	defer func() {
		if r := recover(); r != nil {
			resps = make([]Response, len(reqs))
			for i := range resps {
				resps[i] = Errorf("worker panic: %v", r)
			}
		}
	}()
	if ch, ok := s.handler.(ContextHandler); ok {
		return ch.HandleContext(ctx, reqs)
	}
	return s.handler.Handle(reqs)
}

// observe reports one served batch into the registry.
func (s *Server) observe(reqs []Request, elapsed time.Duration) {
	s.reg.Counter("rpc.server.batches").Inc()
	for _, rq := range reqs {
		s.reg.Counter("rpc.server.requests." + rq.Type.String()).Inc()
	}
	s.reg.Histogram("rpc.server.execute_seconds", obs.LatencyBuckets).Observe(elapsed.Seconds())
}

// Close stops accepting connections, cancels the handler context, and
// terminates active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
