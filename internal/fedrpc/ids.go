package fedrpc

// Namespace-qualified object IDs.
//
// The paper's prototype assumes one interactive control program per worker
// fleet, so a plain per-coordinator counter ("Coordinator.NewID") is enough
// to keep symbol-table IDs unique. A standing multi-session service breaks
// that assumption: many sessions share one fleet, and two sessions whose
// counters both start at 1 would overwrite each other's worker objects.
//
// The fix is a prefix scheme carried inside the existing int64 ID — no wire
// change: the high bits hold a session namespace, the low NamespaceShift
// bits the session-local sequence number. Namespace 0 is the legacy
// unscoped space, so a pre-session coordinator (and every ID already on the
// wire or in a creation log) behaves exactly as before.
//
// CLEAR is namespace-aware through its otherwise-unused ID field: a CLEAR
// with ID == ns removes only that namespace's bindings at the worker, so
// one session's teardown can never destroy another session's state; ID == 0
// keeps the legacy clear-everything semantics.

const (
	// NamespaceShift is the bit position splitting an object ID into
	// (namespace, sequence). 40 sequence bits allow ~10^12 objects per
	// session; 23 namespace bits (the int64 sign bit stays clear) allow
	// ~8M live session namespaces per fleet.
	NamespaceShift = 40
	// MaxNamespace is the largest valid session namespace.
	MaxNamespace = (1 << 23) - 1
)

// MakeID composes a namespace-qualified object ID. Namespace 0 yields the
// legacy unscoped ID space (the sequence alone).
func MakeID(ns, seq int64) int64 { return ns<<NamespaceShift | seq }

// IDNamespace extracts the session namespace of an object ID (0 for legacy
// unscoped IDs).
func IDNamespace(id int64) int64 { return id >> NamespaceShift }
