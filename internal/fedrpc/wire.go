package fedrpc

// Binary wire framing (wire format v1).
//
// The legacy protocol gob-encodes entire request/response batches,
// including dense float64 slabs, which makes encode/decode the dominant
// phase of matrix-heavy RPCs (gob walks every value through reflection and
// varint-compresses it). Format v1 splits each batch into
//
//	[gob control envelope][raw slab][raw slab]...
//
// where the envelope (wireEnvelope / wireReply) carries everything small —
// types, IDs, dims, errors, instructions, the batch epoch — and each
// payload's Values ([]float64) and Bytes ([]byte) contents follow as raw
// little-endian slabs written directly from (and read directly into) the
// backing arrays. gob remains the envelope codec because it is
// self-delimiting on a stream and never reads past a message boundary, so
// raw slabs can interleave with gob messages on one buffered connection.
//
// Negotiation: a connection starts in the legacy gob format unless the
// client sends the 5-byte prelude {0x00, 'X', 'D', 'R', version}. The
// leading 0x00 can never begin a gob stream (a gob message starts with its
// byte count, an unsigned value >= 1 whose first encoded byte is nonzero),
// so a server can sniff one byte and serve both formats on the same port:
// prelude seen -> echo its own prelude and speak v1; anything else -> pure
// gob, exactly as before this format existed. A client that sends the
// prelude to a pre-framing server sees the connection die (the old gob
// decoder chokes on 0x00 and closes); it then redials once and falls back
// to pure gob for good (see Client.dialTransport).
//
// The reply envelope carries the worker's instance epoch once per batch
// instead of once per response; the client stamps it back onto every
// decoded Response so the coordinator's restart detection is unchanged.

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"time"
	"unsafe"

	"exdra/internal/frame"
	"exdra/internal/netem"
)

// wireVersion is the framing version this build speaks.
const wireVersion byte = 1

// wirePrelude is the 5-byte stream prelude: an impossible-for-gob first
// byte, a magic tag, and the version byte.
var wirePrelude = [5]byte{0x00, 'X', 'D', 'R', wireVersion}

// maxSlabBytes bounds a single decoded slab (16 GiB) so a corrupt or
// hostile envelope cannot OOM the process with one forged length.
const maxSlabBytes = int64(1) << 34

// maxEagerSlabBytes bounds what a decoder allocates up front on the word of
// an unverified length descriptor (16 MiB — comfortably above the paper's
// per-RPC transfers). Longer slabs are real but rare, so they are read
// through a doubling-growth loop instead: a forged multi-GiB length then
// costs at most twice the bytes actually present on the stream, not a 16
// GiB make() before the first read.
const maxEagerSlabBytes = int64(16) << 20

// castagnoli is the CRC-32C table used for slab checksums. Castagnoli
// because amd64 and arm64 compute it in hardware — one cheap extra pass
// over slabs that are otherwise written and read zero-copy, so a flipped
// bit in transit surfaces as a typed integrity error instead of silently
// corrupting a model.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wireEnvelope is the control message of one request batch: Request with
// the slab contents (Payload.Values/Bytes) hoisted out. Keep wireRequest's
// fields in sync with Request — TestWireRequestFieldParity enforces it.
//
// DeadlineNanos and Checksums ride the existing gob envelope without a
// version bump: gob skips fields the receiver doesn't know and zero-fills
// fields the sender didn't send, so an old peer simply sees no deadline and
// no checksums — exactly the pre-deadline behavior.
type wireEnvelope struct {
	Requests []wireRequest
	// DeadlineNanos is the relative time budget the caller grants this
	// batch (nanoseconds from the moment the server decodes it). Zero means
	// no deadline — the value an old peer's envelope decodes to.
	DeadlineNanos int64
	// Checksums reports that every slab descriptor in this envelope carries
	// a CRC-32C of its slab contents. Old peers send false (zero value) and
	// their slabs are accepted unverified, as before.
	Checksums bool
	// Tag identifies this batch for pipelining: a nonzero per-connection
	// call ID the server echoes on the matching reply, so replies may
	// return out of order. Zero (what every pre-pipelining peer sends)
	// means lock-step: replies arrive in request order, one at a time.
	Tag uint64
}

// wireRequest mirrors Request with Data replaced by its slab descriptor.
type wireRequest struct {
	Type       RequestType
	ID         int64
	Filename   string
	Privacy    int
	ColPrivacy []int
	Data       wirePayload
	Inst       *Instruction
	UDF        *UDFCall
}

// wireReply is the control message of one response batch. Epoch is the
// responding worker's instance epoch, stamped once per batch (the legacy
// format repeats it on every response).
type wireReply struct {
	Responses []wireResponse
	ExecNanos int64
	Epoch     uint64
	// Checksums mirrors wireEnvelope.Checksums for the reply direction.
	Checksums bool
	// Tag echoes the request envelope's call tag (see wireEnvelope.Tag);
	// zero from peers that never learned to pipeline.
	Tag uint64
}

// wireResponse mirrors Response minus the per-response Epoch (hoisted into
// the wireReply envelope) and minus the slab contents.
type wireResponse struct {
	OK   bool
	Err  string
	Code int
	Data wirePayload
}

// wirePayload is a Payload with the two slab fields replaced by their
// lengths: NVals float64s and NBytes bytes follow the envelope as raw
// slabs, in batch order, Values before Bytes. Length -1 preserves a nil
// slice across the wire (0 is a present-but-empty slab). Frames keep
// traveling inside the envelope: they are typed columns (strings included)
// with no flat numeric backing array to alias.
type wirePayload struct {
	Kind   PayloadKind
	Rows   int
	Cols   int
	Scalar float64
	Frame  []*frame.Column
	NVals  int
	NBytes int
	// ValsCRC and BytesCRC are CRC-32C checksums of the two slabs' wire
	// bytes, meaningful only when the enclosing envelope sets Checksums.
	ValsCRC  uint32
	BytesCRC uint32
}

// toWirePayload hoists the slab lengths out of p and stamps each slab's
// CRC-32C (over the little-endian wire representation — identical to the
// in-memory bytes on LE hosts, converted chunkwise on others).
func toWirePayload(p Payload) wirePayload {
	wp := wirePayload{Kind: p.Kind, Rows: p.Rows, Cols: p.Cols,
		Scalar: p.Scalar, Frame: p.Frame, NVals: -1, NBytes: -1}
	if p.Values != nil {
		wp.NVals = len(p.Values)
		wp.ValsCRC = floatSlabCRC(p.Values)
	}
	if p.Bytes != nil {
		wp.NBytes = len(p.Bytes)
		wp.BytesCRC = crc32.Checksum(p.Bytes, castagnoli)
	}
	return wp
}

// floatSlabCRC computes the CRC-32C of f's little-endian wire bytes.
func floatSlabCRC(f []float64) uint32 {
	if hostLittleEndian {
		return crc32.Checksum(floatBytes(f), castagnoli)
	}
	var crc uint32
	var buf [8]byte
	for _, v := range f {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}

// writePayloadSlabs writes p's slabs in wire order (Values, then Bytes).
func writePayloadSlabs(w io.Writer, p Payload) error {
	if len(p.Values) > 0 {
		if err := writeFloatSlab(w, p.Values); err != nil {
			return err
		}
	}
	if len(p.Bytes) > 0 {
		if _, err := w.Write(p.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// readPayload validates wp and reads its slabs into freshly allocated
// destination arrays — never pooled ones: ownership transfers to the
// decoded Payload (a PUT binds the slab into the symbol table as-is), so
// recycling here would alias live objects. With verify set (the envelope
// declared checksums) each slab's CRC-32C must match its descriptor.
func readPayload(r io.Reader, wp wirePayload, verify bool) (Payload, error) {
	p := Payload{Kind: wp.Kind, Rows: wp.Rows, Cols: wp.Cols,
		Scalar: wp.Scalar, Frame: wp.Frame}
	if wp.NVals < -1 || int64(wp.NVals)*8 > maxSlabBytes {
		return p, fmt.Errorf("fedrpc: invalid values-slab length %d", wp.NVals)
	}
	if wp.NBytes < -1 || int64(wp.NBytes) > maxSlabBytes {
		return p, fmt.Errorf("fedrpc: invalid bytes-slab length %d", wp.NBytes)
	}
	if wp.Kind == PayloadMatrix && wp.NVals >= 0 && wp.NVals != wp.Rows*wp.Cols {
		return p, fmt.Errorf("fedrpc: matrix slab has %d values for %dx%d", wp.NVals, wp.Rows, wp.Cols)
	}
	if wp.NVals >= 0 {
		vals, err := readFloatSlabAlloc(r, wp.NVals)
		p.Values = vals
		if err != nil {
			return p, err
		}
		if verify && floatSlabCRC(vals) != wp.ValsCRC {
			return p, fmt.Errorf("fedrpc: values-slab checksum mismatch (%d values)", wp.NVals)
		}
	}
	if wp.NBytes >= 0 {
		b, err := readBytesAlloc(r, wp.NBytes)
		p.Bytes = b
		if err != nil {
			return p, err
		}
		if verify && crc32.Checksum(b, castagnoli) != wp.BytesCRC {
			return p, fmt.Errorf("fedrpc: bytes-slab checksum mismatch (%d bytes)", wp.NBytes)
		}
	}
	return p, nil
}

// readFloatSlabAlloc allocates and fills an n-float destination slab.
// Small slabs (the common case) are allocated exactly; larger ones grow by
// doubling as data actually arrives, so a forged length descriptor cannot
// force a huge allocation for a stream about to end.
func readFloatSlabAlloc(r io.Reader, n int) ([]float64, error) {
	if int64(n)*8 <= maxEagerSlabBytes {
		f := make([]float64, n)
		return f, readFloatSlab(r, f)
	}
	f := make([]float64, int(maxEagerSlabBytes/8))
	for filled := 0; ; {
		if err := readFloatSlab(r, f[filled:]); err != nil {
			return nil, err
		}
		filled = len(f)
		if filled == n {
			return f, nil
		}
		next := 2 * filled
		if next > n {
			next = n
		}
		grown := make([]float64, next)
		copy(grown, f)
		f = grown
	}
}

// readBytesAlloc is readFloatSlabAlloc for byte slabs.
func readBytesAlloc(r io.Reader, n int) ([]byte, error) {
	if int64(n) <= maxEagerSlabBytes {
		b := make([]byte, n)
		_, err := io.ReadFull(r, b)
		return b, err
	}
	b := make([]byte, int(maxEagerSlabBytes))
	for filled := 0; ; {
		if _, err := io.ReadFull(r, b[filled:]); err != nil {
			return nil, err
		}
		filled = len(b)
		if filled == n {
			return b, nil
		}
		next := 2 * filled
		if next > n {
			next = n
		}
		grown := make([]byte, next)
		copy(grown, b)
		b = grown
	}
}

// writeBatch frames one request batch: envelope, then slabs.
// deadlineNanos is the relative call budget carried to the server (0 = no
// deadline); tag is the pipelining call ID the server echoes on the reply
// (0 = lock-step). The caller flushes the underlying writer.
func writeBatch(enc *gob.Encoder, w io.Writer, reqs []Request, deadlineNanos int64, tag uint64) error {
	env := wireEnvelope{Requests: make([]wireRequest, len(reqs)),
		DeadlineNanos: deadlineNanos, Checksums: true, Tag: tag}
	for i, rq := range reqs {
		env.Requests[i] = wireRequest{
			Type: rq.Type, ID: rq.ID, Filename: rq.Filename,
			Privacy: rq.Privacy, ColPrivacy: rq.ColPrivacy,
			Data: toWirePayload(rq.Data), Inst: rq.Inst, UDF: rq.UDF,
		}
	}
	if err := enc.Encode(env); err != nil {
		return err
	}
	for i := range reqs {
		if err := writePayloadSlabs(w, reqs[i].Data); err != nil {
			return err
		}
	}
	return nil
}

// readBatch decodes one framed request batch plus its relative deadline
// (0 when the peer sent none — including every pre-deadline peer) and its
// pipelining tag (0 from every lock-step peer).
func readBatch(dec *gob.Decoder, r io.Reader) ([]Request, int64, uint64, error) {
	var env wireEnvelope
	if err := dec.Decode(&env); err != nil {
		return nil, 0, 0, err
	}
	reqs := make([]Request, len(env.Requests))
	for i, wr := range env.Requests {
		data, err := readPayload(r, wr.Data, env.Checksums)
		if err != nil {
			return nil, 0, 0, err
		}
		reqs[i] = Request{
			Type: wr.Type, ID: wr.ID, Filename: wr.Filename,
			Privacy: wr.Privacy, ColPrivacy: wr.ColPrivacy,
			Data: data, Inst: wr.Inst, UDF: wr.UDF,
		}
	}
	return reqs, env.DeadlineNanos, env.Tag, nil
}

// writeReply frames one response batch, echoing the request's pipelining
// tag. The epoch is hoisted from the responses (one worker process answered
// the whole batch, so the first nonzero stamp represents them all) into the
// envelope. The caller flushes.
func writeReply(enc *gob.Encoder, w io.Writer, resps []Response, execNanos int64, tag uint64) error {
	rep := wireReply{Responses: make([]wireResponse, len(resps)), ExecNanos: execNanos,
		Checksums: true, Tag: tag}
	for i, rs := range resps {
		if rep.Epoch == 0 {
			rep.Epoch = rs.Epoch
		}
		rep.Responses[i] = wireResponse{OK: rs.OK, Err: rs.Err, Code: rs.Code, Data: toWirePayload(rs.Data)}
	}
	if err := enc.Encode(rep); err != nil {
		return err
	}
	for i := range resps {
		if err := writePayloadSlabs(w, resps[i].Data); err != nil {
			return err
		}
	}
	return nil
}

// readReply decodes one framed response batch, stamping the envelope epoch
// back onto every response so Response.Epoch keeps its documented meaning
// for coordinators regardless of wire format.
func readReply(dec *gob.Decoder, r io.Reader) (rpcReply, error) {
	var rep wireReply
	if err := dec.Decode(&rep); err != nil {
		return rpcReply{}, err
	}
	out := rpcReply{Responses: make([]Response, len(rep.Responses)), ExecNanos: rep.ExecNanos, Tag: rep.Tag}
	for i, wr := range rep.Responses {
		data, err := readPayload(r, wr.Data, rep.Checksums)
		if err != nil {
			return rpcReply{}, err
		}
		out.Responses[i] = Response{OK: wr.OK, Err: wr.Err, Code: wr.Code, Data: data, Epoch: rep.Epoch}
	}
	return out, nil
}

// --- raw float64 slab I/O -------------------------------------------------

// hostLittleEndian reports whether the native byte order matches the wire
// order; when it does, slabs move as single zero-copy writes and reads of
// the float64 backing array's byte view.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// slabChunk sizes the pooled conversion buffers of the portable path.
const slabChunk = 64 << 10

// slabPool recycles the conversion buffers used when a slab cannot be
// moved zero-copy (big-endian hosts). Matrix destination slabs are never
// pooled — only these transient staging chunks are.
var slabPool = sync.Pool{New: func() any {
	b := make([]byte, slabChunk)
	return &b
}}

// floatBytes reinterprets f as its raw byte view (no copy). Only valid
// when host and wire byte order agree.
func floatBytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(f))), len(f)*8)
}

// writeFloatSlab writes f as raw little-endian bytes: zero-copy straight
// from the backing array on little-endian hosts, chunk-converted through a
// pooled buffer otherwise.
func writeFloatSlab(w io.Writer, f []float64) error {
	if hostLittleEndian {
		_, err := w.Write(floatBytes(f))
		return err
	}
	return writeFloatSlabPortable(w, f)
}

// writeFloatSlabPortable is the explicit-conversion path (also exercised
// directly by tests so the pooled-buffer code is covered on every host).
func writeFloatSlabPortable(w io.Writer, f []float64) error {
	bp := slabPool.Get().(*[]byte)
	defer slabPool.Put(bp)
	buf := *bp
	for len(f) > 0 {
		n := len(f)
		if n > len(buf)/8 {
			n = len(buf) / 8
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(f[i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		f = f[n:]
	}
	return nil
}

// readFloatSlab fills f from raw little-endian bytes: zero-copy into the
// destination slab on little-endian hosts.
func readFloatSlab(r io.Reader, f []float64) error {
	if hostLittleEndian {
		_, err := io.ReadFull(r, floatBytes(f))
		return err
	}
	return readFloatSlabPortable(r, f)
}

// readFloatSlabPortable is the explicit-conversion read path.
func readFloatSlabPortable(r io.Reader, f []float64) error {
	bp := slabPool.Get().(*[]byte)
	defer slabPool.Put(bp)
	buf := *bp
	for len(f) > 0 {
		n := len(f)
		if n > len(buf)/8 {
			n = len(buf) / 8
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			f[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		f = f[n:]
	}
	return nil
}

// --- negotiation ----------------------------------------------------------

// ackReadError marks a handshake failure that occurred while waiting for
// the server's ack — i.e. after the prelude was written successfully. Only
// this stage can signal a pre-framing peer (see peerRejectedPrelude); a
// failure writing the prelude is an ordinary transport error.
type ackReadError struct{ err error }

func (e *ackReadError) Error() string { return "reading handshake ack: " + e.err.Error() }
func (e *ackReadError) Unwrap() error { return e.err }

// negotiate performs the client half of the version handshake on a fresh
// connection: send the prelude, read the server's. It returns nil when the
// peer acknowledged the binary format. The deadline (when nonzero) bounds
// the whole handshake; the caller disarms it.
func negotiate(conn net.Conn, deadline time.Duration) error {
	if deadline > 0 {
		_ = conn.SetDeadline(time.Now().Add(deadline))
	}
	if _, err := conn.Write(wirePrelude[:]); err != nil {
		return err
	}
	var got [5]byte
	if _, err := io.ReadFull(conn, got[:]); err != nil {
		return &ackReadError{err: err}
	}
	if got[0] != wirePrelude[0] || got[1] != wirePrelude[1] ||
		got[2] != wirePrelude[2] || got[3] != wirePrelude[3] {
		return fmt.Errorf("fedrpc: bad handshake prelude % x", got)
	}
	if got[4] < 1 {
		return fmt.Errorf("fedrpc: peer speaks framing version %d", got[4])
	}
	// Both sides speak min(local, remote); only v1 exists, so any
	// acknowledged version >= 1 means v1 frames flow.
	return nil
}

// peerRejectedPrelude classifies a handshake failure as "pre-framing peer
// slammed the stream shut on the prelude" — the gob decoder of an old
// server errors on the 0x00 lead byte, logs, and closes the connection —
// as opposed to a timeout, an injected netem fault, or a local close,
// which are ordinary transport errors. Detection is conservative: the
// prelude write must have succeeded (only the ack read can carry the
// rejection signal), and only a clean stream end or a peer reset
// qualifies.
func peerRejectedPrelude(err error) bool {
	var ack *ackReadError
	if !errors.As(err, &ack) {
		return false
	}
	err = ack.err
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return false
	}
	if errors.Is(err, netem.ErrInjectedReset) {
		return false // fault injection simulates flaky transport, not an old peer
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	// A RST surfaces as *net.OpError wrapping ECONNRESET/EPIPE; match on
	// the syscall-agnostic string forms to stay portable.
	s := err.Error()
	return strings.Contains(s, "connection reset") || strings.Contains(s, "broken pipe")
}

// serverHandshake completes the server half: consume the client prelude
// already sniffed by the caller and echo our own. The bufio.Writer is
// flushed eagerly so the client's handshake read returns before the first
// request is even sent.
func serverHandshake(br *bufio.Reader, bw *bufio.Writer) error {
	var got [5]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return err
	}
	if got[1] != wirePrelude[1] || got[2] != wirePrelude[2] || got[3] != wirePrelude[3] {
		return fmt.Errorf("fedrpc: bad client prelude % x", got)
	}
	if got[4] < 1 {
		return fmt.Errorf("fedrpc: client speaks framing version %d", got[4])
	}
	if _, err := bw.Write(wirePrelude[:]); err != nil {
		return err
	}
	return bw.Flush()
}
